"""Consistent-hash router: one front door over N analysis daemons.

The scale-out tier.  A :class:`RouterServer` listens on the same frame
protocol as the daemons behind it, shards job requests across backends
by :func:`~repro.service.jobs.program_key` on a consistent-hash ring
(:class:`HashRing`, virtual nodes), and relays frames — including
streamed ``partial`` frames — between client and backend.  Clients use
the unmodified :class:`~repro.service.client.ServiceClient`; the router
is protocol-transparent.

**Placement.**  Hashing the *program* (not the request) means repeat
analyses of one program land on one backend, so that backend's result
cache and warm worker state keep their hit rates under fan-out.  The
ring uses virtual nodes so a join/leave moves only ~K/N keys, and the
orphaned keys alone: placement of every key owned by a surviving
backend is untouched (``tests/test_router.py`` proves both properties
over 100 seeds).

**Health.**  A background probe loop polls every backend's ``health``
verb.  Consecutive failures mark a backend *down* (flight-recorder
event, excluded from the ring walk); a later success marks it back
*up*.  Operators can *drain* a backend (``{"kind": "drain", ...}``):
in-flight jobs complete, new placements skip it, and ``undrain``
restores it — a planned mark-down.

**Crash rerouting.**  A backend dying mid-job (connection drop, torn
frame) triggers a bounded retry on the next ring node, excluding the
corpse.  A backend that dies *without* closing its sockets (SIGKILL
leaving orphaned workers holding the listener FD, a hung accept loop)
is caught the same way: every in-flight exchange races the backend's
mark-down event, so the probe loop's verdict aborts stuck relays in
probe time instead of job-deadline time.  Jobs are pure functions of their spec, so re-execution is
safe; for *streamed* jobs the replacement backend replays its partial
ops from ``seq`` 1 and the router forwards only ``seq > last-relayed``
— deterministic re-execution makes the replayed prefix identical, so
the client still observes an exactly-once, gap-free op stream.

**Back-pressure.**  The router republishes backend admission signals
instead of hiding them: a ``rejected`` response puts its backend in a
short cooldown during which the router sheds that backend's keys
locally (no connection churn against a saturated daemon), and a health
report showing a full queue does the same.  Degraded responses are
counted as pressure signals too.  All of it lands in ``router.*``
metrics so :func:`~repro.telemetry.obs.latency_summary` renders the
router's own p50/p95/p99 + shed/reject rates.

Like the async daemon, the event loop runs in a daemon thread behind a
synchronous start/stop facade for the CLI (``repro route``) and tests.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import os
import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, field

from .. import fastpath
from ..telemetry import LATENCY_BUCKETS_S, MetricsRegistry
from ..telemetry.obs import latency_summary, render_prometheus
from .cache import ResultCache
from .client import _parse_address
from .jobs import CHAOS_KIND, JobSpec, cache_key, program_key, resolve_spec
from .observe import NULL_OBSERVABILITY, ServiceObservability
from .protocol import (
    ProtocolError,
    RESULT_STATUSES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    FrameAssembler,
    encode,
)
from .server import DEFAULT_DEADLINE_S

#: extra seconds past a job deadline before the router declares a
#: backend unresponsive (the backend's own grace is 10s; stay outside).
_GRACE_S = 15.0

#: read granularity for both the client and backend frame loops.
_READ_BYTES = 1 << 16


# ---------------------------------------------------------------------------
# Consistent hashing
# ---------------------------------------------------------------------------
class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node is hashed ``vnodes`` times onto a 64-bit ring; a key maps
    to the first vnode clockwise from its hash.  ``exclude`` lets the
    router walk past down/draining nodes without mutating the ring, so
    a transient outage reroutes keys while every healthy node's
    placement stays byte-stable.
    """

    def __init__(self, nodes=(), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._ring: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        for node in nodes:
            self._nodes.add(str(node))
        self._rebuild()

    @staticmethod
    def _hash(data: str) -> int:
        return int.from_bytes(
            hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
        )

    def _rebuild(self) -> None:
        ring = [
            (self._hash(f"{node}#{i}"), node)
            for node in self._nodes
            for i in range(self.vnodes)
        ]
        ring.sort()
        self._ring = ring
        self._hashes = [h for h, _ in ring]

    def add(self, node: str) -> None:
        if node not in self._nodes:
            self._nodes.add(node)
            self._rebuild()

    def remove(self, node: str) -> None:
        if node in self._nodes:
            self._nodes.discard(node)
            self._rebuild()

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, key: str, exclude=frozenset()) -> str | None:
        """The node owning ``key``, skipping ``exclude``; None if none left."""
        ring = self._ring
        if not ring:
            return None
        start = bisect_right(self._hashes, self._hash(key)) % len(ring)
        seen: set[str] = set()
        for step in range(len(ring)):
            node = ring[(start + step) % len(ring)][1]
            if node in seen:
                continue
            if node not in exclude:
                return node
            seen.add(node)
        return None


def routing_key(spec: JobSpec) -> str:
    """What the ring hashes: the program's identity.

    Chaos jobs have no program; their params (mode, flag path) make a
    stable stand-in so tests can steer placement deterministically.
    """
    if spec.kind == CHAOS_KIND:
        params = json.dumps(spec.params, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(params.encode("utf-8")).hexdigest()[:16]
        return f"chaos:{digest}"
    return program_key(spec)


# ---------------------------------------------------------------------------
# Router configuration and backend bookkeeping
# ---------------------------------------------------------------------------
@dataclass
class RouterConfig:
    """Router tier configuration (CLI flags map 1:1 onto these fields)."""

    #: backend daemon addresses (unix:///path, tcp://host:port, host:port).
    backends: list[str] = field(default_factory=list)
    socket_path: str | None = None
    host: str = "127.0.0.1"
    port: int | None = None
    #: virtual nodes per backend on the hash ring.
    vnodes: int = 64
    health_interval_s: float = 0.5
    health_timeout_s: float = 2.0
    #: consecutive probe failures before a backend is marked down.
    down_after: int = 2
    #: reroute attempts after a backend dies mid-job.
    retries: int = 1
    cache_entries: int = 256
    default_deadline_s: float = DEFAULT_DEADLINE_S
    #: None -> repro.fastpath.service_observe_enabled() (env-resolved).
    observe: bool | None = None
    obs_dir: str | None = None
    sample_interval_s: float = 1.0

    def address(self) -> str:
        if self.port is not None:
            return f"tcp://{self.host}:{self.port}"
        return f"unix://{self.socket_path}"


class BackendState:
    """Live router-side view of one backend daemon."""

    def __init__(self, address: str):
        self.address = address
        self.healthy = False
        #: set on mark-down, re-armed on mark-up; in-flight exchanges
        #: race against it so a backend that turns into a black hole
        #: (SIGKILLed daemon whose orphaned workers keep the listener
        #: FD alive, hung accept loop) aborts relays in probe-time, not
        #: job-deadline time.
        self.down = asyncio.Event()
        self.draining = False
        self.consecutive_failures = 0
        self.in_flight = 0
        #: loop-clock instant until which the router sheds this
        #: backend's keys locally (set by rejected responses / full
        #: queues in health reports).
        self.saturated_until = 0.0
        self.last_health: dict | None = None
        self.last_error = ""
        self.jobs_relayed = 0

    def routable(self) -> bool:
        return self.healthy and not self.draining

    def snapshot(self) -> dict:
        return {
            "healthy": self.healthy,
            "draining": self.draining,
            "in_flight": self.in_flight,
            "jobs_relayed": self.jobs_relayed,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "queue_depth": (self.last_health or {}).get("queue_depth"),
            "queue_capacity": (self.last_health or {}).get("queue_capacity"),
        }


class RouterServer:
    """The consistent-hash router tier; see the module docstring."""

    def __init__(self, config: RouterConfig, registry: MetricsRegistry | None = None):
        if (config.socket_path is None) == (config.port is None):
            raise ValueError("configure exactly one of socket_path or port")
        if not config.backends:
            raise ValueError("router needs at least one backend address")
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry(enabled=True)
        if fastpath.service_observe_enabled(config.observe):
            self.obs = ServiceObservability(
                self.registry,
                dump_dir=config.obs_dir,
                sample_interval_s=config.sample_interval_s,
            )
        else:
            self.obs = NULL_OBSERVABILITY
        self.cache = ResultCache(config.cache_entries)
        self.ring = HashRing(config.backends, vnodes=config.vnodes)
        self.backends: dict[str, BackendState] = {
            address: BackendState(address) for address in config.backends
        }
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._running = False
        self._draining = False
        self._shutdown_requested = threading.Event()
        self._started_at = 0.0

    # -- sync facade ---------------------------------------------------------
    def start(self) -> "RouterServer":
        self._running = True
        self._thread = threading.Thread(
            target=self._run_loop, name="router-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            self._running = False
            raise RuntimeError("router failed to start in time")
        if self._startup_error is not None:
            self._running = False
            raise self._startup_error
        return self

    def serve_forever(self) -> None:
        if not self._running:
            self.start()
        try:
            while self._running and not self._shutdown_requested.wait(timeout=0.2):
                pass
        finally:
            self.stop()

    def stop(self, drain_timeout_s: float = 10.0) -> None:
        """Drain, then shut down: new jobs are rejected while in-flight
        relays finish (bounded), then the loop exits."""
        if not self._running:
            return
        self._running = False
        loop = self._loop
        if loop is not None:
            def begin_drain():
                self._draining = True
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(begin_drain)
            deadline = time.monotonic() + drain_timeout_s
            while time.monotonic() < deadline:
                if sum(b.in_flight for b in self.backends.values()) == 0:
                    break
                time.sleep(0.05)
            if self._stop_event is not None:
                with contextlib.suppress(RuntimeError):
                    loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self.config.socket_path:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)

    def __enter__(self) -> "RouterServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._startup_error = exc
        finally:
            self._ready.set()

    # -- event loop ----------------------------------------------------------
    async def _amain(self) -> None:
        config = self.config
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started_at = time.monotonic()
        if config.port is not None:
            server = await asyncio.start_server(
                self._handle_connection, config.host, config.port
            )
            if config.port == 0:
                config.port = server.sockets[0].getsockname()[1]
        else:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(config.socket_path)
            server = await asyncio.start_unix_server(
                self._handle_connection, path=config.socket_path
            )
        self.obs.start()
        self.obs.event(
            "router.start", address=config.address(),
            backends=list(config.backends), vnodes=config.vnodes,
        )
        self.registry.gauge("router.backends.total").set(len(self.backends))
        await asyncio.gather(*(self._probe(b) for b in self.backends.values()))
        health_task = asyncio.ensure_future(self._health_loop())
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            health_task.cancel()
            for task in list(self._conn_tasks):
                task.cancel()
            pending = [health_task, *self._conn_tasks]
            await asyncio.gather(*pending, return_exceptions=True)
            self.obs.event("router.stop")
            self.obs.stop()

    # -- health probing ------------------------------------------------------
    async def _health_loop(self) -> None:
        interval = self.config.health_interval_s
        while True:
            await asyncio.sleep(interval)
            await asyncio.gather(*(self._probe(b) for b in self.backends.values()))

    async def _probe(self, backend: BackendState) -> None:
        try:
            response = await asyncio.wait_for(
                self._roundtrip(backend.address, {"kind": "health"}),
                timeout=self.config.health_timeout_s,
            )
            body = (response or {}).get("health") or {}
            ok = bool(body.get("ok"))
            if not ok:
                backend.last_error = "backend reports unhealthy"
        except (OSError, ProtocolError, ConnectionError, asyncio.TimeoutError) as exc:
            ok = False
            body = None
            backend.last_error = str(exc) or type(exc).__name__
        if ok:
            backend.consecutive_failures = 0
            backend.last_health = body
            if not backend.healthy:
                backend.healthy = True
                backend.down = asyncio.Event()
                self.registry.counter("router.backend.markups").inc()
                self.obs.event("router.backend.up", backend=backend.address)
            # A full queue in the health report is the same signal as a
            # rejected response: shed this backend's keys for one
            # probe interval instead of hammering a saturated daemon.
            depth = body.get("queue_depth")
            capacity = body.get("queue_capacity")
            if depth is not None and capacity is not None and depth >= capacity:
                loop = asyncio.get_running_loop()
                backend.saturated_until = max(
                    backend.saturated_until, loop.time() + self.config.health_interval_s
                )
                self.registry.counter("router.backpressure.signals").inc()
        else:
            backend.consecutive_failures += 1
            if backend.healthy and backend.consecutive_failures >= self.config.down_after:
                self._mark_down(backend, backend.last_error)
        self.registry.gauge("router.backends.healthy").set(
            sum(1 for b in self.backends.values() if b.healthy)
        )

    def _mark_down(self, backend: BackendState, reason: str) -> None:
        if backend.healthy:
            backend.healthy = False
            backend.down.set()
            backend.consecutive_failures = max(
                backend.consecutive_failures, self.config.down_after
            )
            self.registry.counter("router.backend.markdowns").inc()
            self.obs.event(
                "router.backend.down", backend=backend.address, reason=str(reason)
            )
            self.registry.gauge("router.backends.healthy").set(
                sum(1 for b in self.backends.values() if b.healthy)
            )

    # -- backend I/O ---------------------------------------------------------
    async def _open_backend(self, address: str):
        family, target = _parse_address(address)
        if family == "unix":
            return await asyncio.open_unix_connection(target)
        return await asyncio.open_connection(target[0], target[1])

    async def _roundtrip(self, address: str, payload: dict) -> dict:
        """One control-verb exchange with a backend (no partials)."""
        reader, writer = await self._open_backend(address)
        try:
            writer.write(encode(payload))
            await writer.drain()
            return await self._read_frame(reader, FrameAssembler(), address)
        finally:
            writer.close()
            with contextlib.suppress(OSError, ConnectionError):
                await writer.wait_closed()

    @staticmethod
    async def _read_frame(reader, assembler: FrameAssembler, address: str):
        while True:
            frame = assembler.next_frame()
            if frame is not None:
                return frame
            data = await reader.read(_READ_BYTES)
            if not data:
                raise ProtocolError(f"backend {address} closed mid-exchange")
            assembler.feed(data)

    # -- client connections --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        registry = self.registry
        registry.counter("router.connections").inc()
        registry.gauge("router.active_connections").set(len(self._conn_tasks))
        registry.gauge("router.peak_connections").set_max(len(self._conn_tasks))
        assembler = FrameAssembler()
        try:
            while True:
                request = assembler.next_frame()
                if request is None:
                    data = await reader.read(_READ_BYTES)
                    if not data:
                        if assembler.pending_bytes:
                            raise ProtocolError("connection closed mid-frame")
                        return
                    assembler.feed(data)
                    continue
                await self._serve_request(request, writer)
                if isinstance(request, dict) and request.get("kind") == "shutdown":
                    self._shutdown_requested.set()
                    return
        except ProtocolError as exc:
            with contextlib.suppress(OSError, ConnectionError):
                writer.write(encode({"status": STATUS_ERROR, "error": str(exc)}))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            registry.gauge("router.active_connections").set(len(self._conn_tasks))
            with contextlib.suppress(OSError, ConnectionError):
                writer.close()

    async def _serve_request(self, request, writer: asyncio.StreamWriter) -> None:
        if not isinstance(request, dict):
            raise ProtocolError("request must be a JSON object")
        self.registry.counter("router.requests").inc()
        kind = request.get("kind")
        if kind == "stats":
            response = {"status": STATUS_OK, "stats": self.stats()}
        elif kind == "health":
            response = {"status": STATUS_OK, "health": self.health()}
        elif kind == "metrics":
            response = {
                "status": STATUS_OK,
                "metrics": self.metrics(dump=bool(request.get("dump"))),
            }
        elif kind == "shutdown":
            response = {"status": STATUS_OK, "shutting_down": True}
        elif kind in ("drain", "undrain"):
            response = self._set_drain(request, draining=(kind == "drain"))
        else:
            response = await self._dispatch_job(request, writer)
        writer.write(encode(response))
        await writer.drain()

    def _set_drain(self, request: dict, draining: bool) -> dict:
        address = request.get("backend")
        backend = self.backends.get(address)
        if backend is None:
            return {
                "status": STATUS_ERROR,
                "error": f"unknown backend {address!r} "
                         f"(have: {', '.join(sorted(self.backends))})",
            }
        backend.draining = draining
        self.obs.event(
            "router.backend.drain" if draining else "router.backend.undrain",
            backend=address, in_flight=backend.in_flight,
        )
        return {
            "status": STATUS_OK,
            "drain": {
                "backend": address,
                "draining": draining,
                "in_flight": backend.in_flight,
            },
        }

    # -- job relay -----------------------------------------------------------
    async def _dispatch_job(self, request: dict, writer: asyncio.StreamWriter) -> dict:
        registry = self.registry
        registry.counter("router.jobs.received").inc()
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        if self._draining:
            registry.counter("router.jobs.rejected").inc()
            return {
                "status": STATUS_REJECTED,
                "reason": "router draining",
                "retry_after_s": 1.0,
            }
        # Chaos policing is the backend's job (its allow_chaos flag);
        # the router resolves the spec only for routing + cache keys.
        spec = resolve_spec(request, allow_chaos=True)
        want_trace = bool(request.get("trace"))
        key = cache_key(spec)
        if spec.cache and not want_trace:
            cached = self.cache.get(key)
            if cached is not None:
                registry.counter("router.cache.hits").inc()
                registry.counter("router.jobs.completed").inc()
                self._observe_latency(loop.time() - t0)
                return {"status": STATUS_OK, "result": cached, "cached": True}

        response = await self._relay_with_reroute(spec, request, writer)
        status = response.get("status")
        if status == STATUS_REJECTED:
            registry.counter("router.jobs.rejected").inc()
        elif status in RESULT_STATUSES:
            registry.counter("router.jobs.completed").inc()
            if status != STATUS_OK:
                registry.counter("router.jobs.degraded").inc()
                registry.counter("router.backpressure.signals").inc()
            elif spec.cache and not want_trace and response.get("result") is not None:
                self.cache.put(key, response["result"])
        self._observe_latency(loop.time() - t0)
        return response

    def _observe_latency(self, elapsed_s: float) -> None:
        self.registry.histogram(
            "router.latency.total_s", LATENCY_BUCKETS_S
        ).observe(elapsed_s)

    async def _relay_with_reroute(
        self, spec: JobSpec, request: dict, writer: asyncio.StreamWriter
    ) -> dict:
        registry = self.registry
        loop = asyncio.get_running_loop()
        key = routing_key(spec)
        budget_s = (spec.deadline_s or self.config.default_deadline_s) + _GRACE_S
        deadline = loop.time() + budget_s
        excluded: set[str] = set()
        attempts_left = self.config.retries
        # Monotone relay cursor shared across attempts: a replacement
        # backend replays partials from seq 1; only seq > last_seq is
        # forwarded, so crash-retries stay exactly-once for the client.
        state = {"last_seq": 0}

        async def relay(frame: dict) -> None:
            seq = int(frame.get("seq") or 0)
            if seq <= state["last_seq"]:
                registry.counter("router.stream.duplicates_dropped").inc()
                return
            state["last_seq"] = seq
            registry.counter("router.stream.frames").inc()
            writer.write(encode(frame))
            await writer.drain()

        while True:
            unroutable = {
                a for a, b in self.backends.items() if not b.routable()
            }
            address = self.ring.node(key, exclude=excluded | unroutable)
            if address is None:
                registry.counter("router.jobs.unroutable").inc()
                return {
                    "status": STATUS_ERROR,
                    "error": "no healthy backend available",
                }
            backend = self.backends[address]
            now = loop.time()
            if backend.saturated_until > now:
                return {
                    "status": STATUS_REJECTED,
                    "reason": f"backpressure: backend {address} at capacity",
                    "retry_after_s": round(backend.saturated_until - now, 3),
                }
            backend.in_flight += 1
            # Race the exchange against this backend's mark-down: a
            # daemon that dies without closing its sockets (SIGKILL
            # with orphaned workers holding the listener FD, a hung
            # accept loop) would otherwise stall the relay for the full
            # job budget.  The probe loop notices in bounded time; the
            # moment it marks the backend down we abandon the exchange
            # and reroute like any other mid-job transport failure.
            exchange = asyncio.ensure_future(self._exchange(backend, request, relay))
            marked_down = asyncio.ensure_future(backend.down.wait())
            try:
                await asyncio.wait(
                    {exchange, marked_down},
                    timeout=max(0.05, deadline - now),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if exchange.done():
                    response = exchange.result()
                else:
                    exchange.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, OSError, ProtocolError,
                        ConnectionError,
                    ):
                        await exchange
                    if not marked_down.done():
                        return {
                            "status": STATUS_ERROR,
                            "error": f"backend {address} unresponsive past deadline",
                        }
                    raise ConnectionError(
                        f"backend {address} marked down mid-job"
                    )
            except (OSError, ProtocolError, ConnectionError) as exc:
                self._mark_down(backend, f"failed mid-job: {exc}")
                excluded.add(address)
                if attempts_left <= 0:
                    registry.counter("router.jobs.failed").inc()
                    return {
                        "status": STATUS_ERROR,
                        "error": f"backend {address} failed mid-job: {exc}",
                    }
                attempts_left -= 1
                registry.counter("router.jobs.rerouted").inc()
                self.obs.event(
                    "router.reroute", job_kind=spec.kind, from_backend=address,
                    error=str(exc) or type(exc).__name__,
                )
                continue
            finally:
                marked_down.cancel()
                backend.in_flight -= 1
            backend.jobs_relayed += 1
            if response.get("status") == STATUS_REJECTED:
                # Republish the admission verdict as local back-pressure:
                # shed this backend's keys until its advertised retry-after.
                cooldown = float(response.get("retry_after_s") or 0.5)
                backend.saturated_until = max(
                    backend.saturated_until, loop.time() + cooldown
                )
                registry.counter("router.backpressure.signals").inc()
            return response

    async def _exchange(self, backend: BackendState, request: dict, relay) -> dict:
        """One job exchange: forward the request, relay partials, return
        the terminal frame."""
        reader, bwriter = await self._open_backend(backend.address)
        try:
            bwriter.write(encode(request))
            await bwriter.drain()
            assembler = FrameAssembler()
            while True:
                frame = await self._read_frame(reader, assembler, backend.address)
                if isinstance(frame, dict) and frame.get("status") == STATUS_PARTIAL:
                    await relay(frame)
                    continue
                return frame
        finally:
            bwriter.close()
            with contextlib.suppress(OSError, ConnectionError):
                await bwriter.wait_closed()

    # -- introspection -------------------------------------------------------
    def health(self) -> dict:
        routable = sum(1 for b in self.backends.values() if b.routable())
        return {
            "ok": routable > 0 and not self._draining,
            "role": "router",
            "address": self.config.address(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "draining": self._draining,
            "backends_total": len(self.backends),
            "backends_healthy": sum(1 for b in self.backends.values() if b.healthy),
            "backends_routable": routable,
            "backends": {a: b.snapshot() for a, b in self.backends.items()},
        }

    def stats(self) -> dict:
        return {
            "health": self.health(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "entries": len(self.cache),
            },
            "metrics": self.registry.as_dict(),
        }

    def metrics(self, dump: bool = False) -> dict:
        payload = {
            "json": self.registry.as_dict(),
            "prometheus": render_prometheus(self.registry),
            "summary": latency_summary(self.registry, prefix="router"),
        }
        payload.update(self.obs.metrics_payload(dump=dump))
        return payload


__all__ = [
    "BackendState",
    "HashRing",
    "RouterConfig",
    "RouterServer",
    "routing_key",
]
