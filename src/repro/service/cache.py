"""Idempotent result cache for repeated analysis queries.

Execution is a pure function of the job spec (deterministic
interpreter, no wall-clock in result payloads), so the service can
memoize whole results by :func:`repro.service.jobs.cache_key` —
(kind, program hash, params, *resolved* fidelity).  Values are stored
as their canonical JSON encoding and decoded on every hit, which makes
two guarantees structural rather than hoped-for:

* **bit-identity** — a hit returns exactly the bytes the cold run
  produced (the benchmark asserts repeat slice queries equal the cold
  result byte for byte);
* **isolation** — a caller mutating a returned payload can never
  poison later hits.

Bounded LRU; thread-safe (the server handles connections on threads).
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict


class ResultCache:
    """LRU map of cache_key -> canonical-JSON result payload.

    Hit/miss counters are incremented live on the supplied registry
    (``service.cache.*``) so a long-running daemon's STATS responses
    always reflect the current totals.
    """

    def __init__(self, max_entries: int = 256, registry=None):
        if max_entries < 1:
            raise ValueError("cache needs max_entries >= 1")
        from ..telemetry import NULL_REGISTRY

        self.max_entries = max_entries
        self._entries: OrderedDict[str, str] = OrderedDict()
        self._lock = threading.Lock()
        self._registry = registry if registry is not None else NULL_REGISTRY
        self.hits = 0
        self.misses = 0

    def get(self, key: str):
        """The cached payload (fresh decode) or None."""
        with self._lock:
            encoded = self._entries.get(key)
            if encoded is None:
                self.misses += 1
                self._registry.counter("service.cache.misses").inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._registry.counter("service.cache.hits").inc()
        return json.loads(encoded)

    def put(self, key: str, payload: dict) -> None:
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._entries[key] = encoded
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


__all__ = ["ResultCache"]
