"""The analysis daemon: accept loop, admission, dispatch, responses.

One :class:`AnalysisServer` owns a listening socket (Unix-domain by
default, TCP when given a port), an :class:`~repro.service.admission.AdmissionController`,
a :class:`~repro.service.cache.ResultCache` and a
:class:`~repro.service.pool.WorkerPool`.  Each client connection gets
a handler thread that reads framed requests in lockstep:

* control requests (``stats`` / ``health`` / ``shutdown``) are
  answered inline from live state;
* job requests flow admission -> cache -> pool, and the handler blocks
  on the job's completion event (bounded by the job deadline plus a
  grace period, so a client is *never* left hanging even if the pool
  misbehaves).

Every stage stamps ``service.*`` telemetry into the server's live
:class:`~repro.telemetry.MetricsRegistry`; ``stats`` serializes the
same snapshot a ``--report`` run would.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
import time
from dataclasses import dataclass

from .. import fastpath
from ..telemetry import MetricsRegistry
from ..telemetry.obs import latency_summary, new_trace_id, render_prometheus, wall_now_us
from .admission import ACTION_ADMIT, AdmissionController
from .cache import ResultCache
from .jobs import cache_key, resolve_spec
from .observe import NULL_OBSERVABILITY, ServiceObservability
from .pool import Job, WorkerPool
from .protocol import (
    EOF,
    FRAME,
    FrameReader,
    ProtocolError,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    send_frame,
)

#: extra seconds a handler waits past a job's deadline before declaring
#: the pool lost (belt and braces: the pool itself enforces deadlines).
_GRACE_S = 10.0

#: fallback deadline for jobs that don't carry one.
DEFAULT_DEADLINE_S = 120.0


@dataclass
class ServiceConfig:
    """Daemon configuration (CLI flags map 1:1 onto these fields)."""

    socket_path: str | None = None
    host: str = "127.0.0.1"
    port: int | None = None
    workers: int = 2
    queue_capacity: int = 8
    default_deadline_s: float = DEFAULT_DEADLINE_S
    cache_entries: int = 256
    max_retries: int = 1
    respawn_limit: int = 3
    #: None -> repro.fastpath.service_degrade_enabled() (env-resolved).
    degrade: bool | None = None
    #: admit the test-only "chaos" job kind (crash/hang injection).
    allow_chaos: bool = False
    #: None -> repro.fastpath.service_observe_enabled() (env-resolved).
    observe: bool | None = None
    #: where flight-recorder dumps land (default: the daemon's cwd).
    obs_dir: str | None = None
    #: metrics-window sampling period for the background sampler.
    sample_interval_s: float = 1.0

    def address(self) -> str:
        if self.port is not None:
            return f"tcp://{self.host}:{self.port}"
        return f"unix://{self.socket_path}"


class AnalysisServer:
    """The DIFT-as-a-service daemon; see the module docstring."""

    def __init__(self, config: ServiceConfig, registry: MetricsRegistry | None = None):
        if (config.socket_path is None) == (config.port is None):
            raise ValueError("configure exactly one of socket_path or port")
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry(enabled=True)
        self.admission = AdmissionController(
            config.queue_capacity, degrade=config.degrade
        )
        self.cache = ResultCache(config.cache_entries, registry=self.registry)
        if fastpath.service_observe_enabled(config.observe):
            self.obs = ServiceObservability(
                self.registry,
                dump_dir=config.obs_dir,
                sample_interval_s=config.sample_interval_s,
            )
        else:
            self.obs = NULL_OBSERVABILITY
        self.pool = WorkerPool(
            workers=config.workers,
            registry=self.registry,
            max_retries=config.max_retries,
            respawn_limit=config.respawn_limit,
            obs=self.obs,
        )
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._running = False
        self._started_at = 0.0
        self._shutdown_requested = threading.Event()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "AnalysisServer":
        """Bind, start the pool, and begin accepting (non-blocking)."""
        config = self.config
        if config.port is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((config.host, config.port))
            if config.port == 0:  # ephemeral: record what the OS picked
                config.port = listener.getsockname()[1]
        else:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(config.socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(config.socket_path)
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self._running = True
        self._started_at = time.monotonic()
        self.obs.start()
        self.obs.event("server.start", address=config.address(),
                       workers=config.workers, capacity=config.queue_capacity)
        self.pool.start()
        self.registry.gauge("service.workers").set(config.workers)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`stop` or a ``shutdown`` request."""
        if not self._running:
            self.start()
        try:
            while self._running and not self._shutdown_requested.wait(timeout=0.2):
                pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, stop the pool, unlink."""
        if not self._running:
            return
        self._running = False
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for thread in list(self._conn_threads):
            thread.join(timeout=2.0)
        self.pool.stop()
        self.obs.event("server.stop")
        self.obs.stop()
        if self.config.socket_path:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)

    def __enter__(self) -> "AnalysisServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accept/handler threads ----------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            self._conn_threads.append(thread)
            thread.start()
            self._conn_threads = [t for t in self._conn_threads if t.is_alive()]

    def _handle_connection(self, conn: socket.socket) -> None:
        reader = FrameReader(conn)
        with contextlib.closing(conn):
            while self._running:
                try:
                    state, request = reader.poll(timeout_s=0.5)
                    if state == EOF:
                        return  # client closed cleanly
                    if state != FRAME:
                        continue  # idle poll tick; partial frames are buffered
                    response = self._dispatch(request)
                    send_frame(conn, response)
                    if isinstance(request, dict) and request.get("kind") == "shutdown":
                        self._shutdown_requested.set()
                        return
                except ProtocolError as exc:
                    with contextlib.suppress(OSError):
                        send_frame(conn, {"status": STATUS_ERROR, "error": str(exc)})
                    return
                except OSError:
                    return

    # -- request dispatch ----------------------------------------------------
    def _dispatch(self, request) -> dict:
        if not isinstance(request, dict):
            raise ProtocolError("request must be a JSON object")
        kind = request.get("kind")
        if kind == "stats":
            return {"status": STATUS_OK, "stats": self.stats()}
        if kind == "health":
            return {"status": STATUS_OK, "health": self.health()}
        if kind == "metrics":
            return {
                "status": STATUS_OK,
                "metrics": self.metrics(dump=bool(request.get("dump"))),
            }
        if kind == "shutdown":
            return {"status": STATUS_OK, "shutting_down": True}
        return self._dispatch_job(request)

    def _dispatch_job(self, request: dict) -> dict:
        w0 = wall_now_us()
        # Per-job tracing is request opt-in ("trace": true) *and* gated
        # on the daemon's observability seam; trace keys are transport
        # metadata resolve_spec ignores, so cache keys never see them.
        want_trace = bool(request.get("trace")) and self.obs.enabled
        trace_id = ""
        if want_trace:
            trace_id = str(request.get("trace_id") or "") or new_trace_id()
        response, worker_events = self._admit_and_run(request, trace_id)
        if want_trace:
            self.obs.span_at(
                "server.handle", w0, wall_now_us() - w0,
                trace_id=trace_id, status=response.get("status"),
            )
            response["trace"] = {
                "trace_id": trace_id,
                "events": self.obs.trace_events(trace_id) + list(worker_events),
            }
        return response

    def _admit_and_run(self, request: dict, trace_id: str) -> tuple[dict, list]:
        registry = self.registry
        registry.counter("service.jobs.received").inc()
        t0 = time.monotonic()
        spec = resolve_spec(request, allow_chaos=self.config.allow_chaos)

        a0 = wall_now_us()
        depth = self.pool.depth()
        decision = self.admission.decide(depth, spec.kind, spec.fidelity)
        self.obs.event(
            "admission", action=decision.action, job_kind=spec.kind, depth=depth,
            requested=spec.fidelity, resolved=decision.fidelity,
            reason=decision.reason, trace_id=trace_id,
        )
        if trace_id:
            self.obs.span_at(
                "server.admission", a0, wall_now_us() - a0,
                trace_id=trace_id, action=decision.action, depth=depth,
                fidelity=decision.fidelity,
            )
        if decision.action != ACTION_ADMIT:
            registry.counter("service.jobs.rejected").inc()
            return {
                "status": STATUS_REJECTED,
                "reason": decision.reason,
                "retry_after_s": 0.5,
            }, []
        degraded = decision.degraded
        spec.fidelity = decision.fidelity
        if degraded:
            registry.counter("service.jobs.degraded").inc()
        registry.counter("service.jobs.admitted").inc()

        key = cache_key(spec)
        if spec.cache:
            cached = self.cache.get(key)
            if cached is not None:
                if trace_id:
                    self.obs.instant_at(
                        "server.cache_hit", wall_now_us(), trace_id=trace_id
                    )
                return self._job_response(
                    cached, degraded, decision.reason, cached=True, t0=t0
                ), []

        deadline = spec.deadline_s or self.config.default_deadline_s
        job = Job(spec, key, deadline_s=deadline)
        job.degraded = degraded
        job.degrade_reason = decision.reason
        if trace_id:
            job.trace_id = trace_id
            job.payload["_trace"] = trace_id
        self.pool.submit(job)
        if not job.event.wait(timeout=deadline + _GRACE_S):
            # The pool should have timed the job out itself; this is the
            # handler's own never-hang guarantee.
            registry.counter("service.jobs.lost").inc()
            return {"status": STATUS_ERROR, "error": "job lost by the pool"}, []
        if job.status == STATUS_OK:
            if spec.cache and job.result is not None:
                self.cache.put(key, job.result)
            return self._job_response(
                job.result, degraded, decision.reason, t0=t0
            ), job.worker_events
        return {"status": job.status, "error": job.error}, job.worker_events

    def _job_response(
        self, result: dict, degraded: bool, reason: str, cached: bool = False,
        t0: float = 0.0,
    ) -> dict:
        response = {
            "status": STATUS_DEGRADED if degraded else STATUS_OK,
            "result": result,
            "cached": cached,
        }
        if degraded:
            response["reason"] = reason
        if t0:
            from ..telemetry import LATENCY_BUCKETS_S

            self.registry.histogram(
                "service.latency.respond_s", LATENCY_BUCKETS_S
            ).observe(time.monotonic() - t0)
        return response

    # -- introspection -------------------------------------------------------
    def health(self) -> dict:
        return {
            "ok": self.pool.alive_workers() > 0,
            "address": self.config.address(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers_alive": self.pool.alive_workers(),
            "queue_depth": self.pool.depth(),
            "queue_capacity": self.config.queue_capacity,
            "degrade_enabled": self.admission.degrade_enabled,
        }

    def stats(self) -> dict:
        return {
            "health": self.health(),
            "pool": self.pool.stats(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "entries": len(self.cache),
            },
            "metrics": self.registry.as_dict(),
        }

    def metrics(self, dump: bool = False) -> dict:
        """The ``metrics`` request body: exposition + derived summary.

        The JSON snapshot, Prometheus text and p50/p95/p99 + shed-rate
        summary come straight off the live registry, so they work even
        with observability disabled; the observability extras (sample
        series, flight-dump paths, session id) ride along when the seam
        is on.  ``dump=True`` additionally writes a flight-recorder
        artifact and reports its path.
        """
        payload = {
            "json": self.registry.as_dict(),
            "prometheus": render_prometheus(self.registry),
            "summary": latency_summary(self.registry),
        }
        payload.update(self.obs.metrics_payload(dump=dump))
        return payload


__all__ = ["AnalysisServer", "DEFAULT_DEADLINE_S", "ServiceConfig"]
