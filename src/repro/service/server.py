"""The analysis daemon: accept loop, admission, dispatch, responses.

The transport-independent heart of the daemon lives in
:class:`ServiceCore`: admission -> cache -> pool dispatch, plus the
health/stats/metrics introspection bodies.  Two front doors wrap one
core — the threaded :class:`AnalysisServer` here (handler thread per
connection, blocking waits) and the event-loop
:class:`~repro.service.aserver.AsyncAnalysisServer` (coroutine per
connection, streamed partial results).  Both speak the identical frame
protocol against the identical pool; the core is the seam that keeps
their responses byte-identical.

One :class:`AnalysisServer` owns a listening socket (Unix-domain by
default, TCP when given a port), an :class:`~repro.service.admission.AdmissionController`,
a :class:`~repro.service.cache.ResultCache` and a
:class:`~repro.service.pool.WorkerPool`.  Each client connection gets
a handler thread that reads framed requests in lockstep:

* control requests (``stats`` / ``health`` / ``shutdown``) are
  answered inline from live state;
* job requests flow admission -> cache -> pool, and the handler blocks
  on the job's completion event (bounded by the job deadline plus a
  grace period, so a client is *never* left hanging even if the pool
  misbehaves).

Every stage stamps ``service.*`` telemetry into the server's live
:class:`~repro.telemetry.MetricsRegistry`; ``stats`` serializes the
same snapshot a ``--report`` run would.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
import time
from dataclasses import dataclass, field

from .. import fastpath
from ..telemetry import MetricsRegistry
from ..telemetry.obs import latency_summary, new_trace_id, render_prometheus, wall_now_us
from .admission import ACTION_ADMIT, AdmissionController
from .cache import ResultCache
from .jobs import JobSpec, cache_key, resolve_spec
from .observe import NULL_OBSERVABILITY, ServiceObservability
from .pool import Job, WorkerPool
from .protocol import (
    EOF,
    FRAME,
    FrameReader,
    ProtocolError,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    send_frame,
)

#: extra seconds a handler waits past a job's deadline before declaring
#: the pool lost (belt and braces: the pool itself enforces deadlines).
_GRACE_S = 10.0

#: fallback deadline for jobs that don't carry one.
DEFAULT_DEADLINE_S = 120.0


@dataclass
class ServiceConfig:
    """Daemon configuration (CLI flags map 1:1 onto these fields)."""

    socket_path: str | None = None
    host: str = "127.0.0.1"
    port: int | None = None
    workers: int = 2
    queue_capacity: int = 8
    default_deadline_s: float = DEFAULT_DEADLINE_S
    cache_entries: int = 256
    max_retries: int = 1
    respawn_limit: int = 3
    #: None -> repro.fastpath.service_degrade_enabled() (env-resolved).
    degrade: bool | None = None
    #: admit the test-only "chaos" job kind (crash/hang injection).
    allow_chaos: bool = False
    #: None -> repro.fastpath.service_observe_enabled() (env-resolved).
    observe: bool | None = None
    #: where flight-recorder dumps land (default: the daemon's cwd).
    obs_dir: str | None = None
    #: metrics-window sampling period for the background sampler.
    sample_interval_s: float = 1.0

    def address(self) -> str:
        if self.port is not None:
            return f"tcp://{self.host}:{self.port}"
        return f"unix://{self.socket_path}"


@dataclass
class PreparedJob:
    """An admitted, cache-missed job ready for pool submission."""

    spec: JobSpec
    key: str
    degraded: bool
    reason: str
    deadline_s: float
    t0: float = field(default=0.0)

    @property
    def grace_deadline_s(self) -> float:
        """How long a front door may wait before declaring the job lost."""
        return self.deadline_s + _GRACE_S


class ServiceCore:
    """Transport-independent daemon core: admission -> cache -> pool.

    Owns the registry, admission controller, result cache, observability
    seam and worker pool, and exposes the job pipeline as three steps a
    front door calls around its own waiting primitive:

    ``prepare(request)``
        runs admission and the cache probe; returns either a finished
        response (rejected, or cache hit) or a :class:`PreparedJob`.
    ``make_job(prepared, ...)``
        builds the pool :class:`~repro.service.pool.Job`, wiring
        streaming/completion callbacks for async callers.
    ``finish(prepared, job)`` / ``lost_response()``
        folds the completed (or lost) job into the wire response,
        populating the cache on success.

    The threaded server blocks on ``job.event`` between steps two and
    three; the async server awaits an ``asyncio`` event poked by the
    job's ``done_cb``.  Everything else — and therefore every response
    byte — is shared.
    """

    def __init__(self, config: ServiceConfig, registry: MetricsRegistry | None = None):
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry(enabled=True)
        self.admission = AdmissionController(
            config.queue_capacity, degrade=config.degrade
        )
        self.cache = ResultCache(config.cache_entries, registry=self.registry)
        if fastpath.service_observe_enabled(config.observe):
            self.obs = ServiceObservability(
                self.registry,
                dump_dir=config.obs_dir,
                sample_interval_s=config.sample_interval_s,
            )
        else:
            self.obs = NULL_OBSERVABILITY
        self.pool = WorkerPool(
            workers=config.workers,
            registry=self.registry,
            max_retries=config.max_retries,
            respawn_limit=config.respawn_limit,
            obs=self.obs,
        )
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Start observability and the pool (the front door binds first,
        so ``server.start`` records the resolved address)."""
        self._started_at = time.monotonic()
        self.obs.start()
        self.obs.event(
            "server.start", address=self.config.address(),
            workers=self.config.workers, capacity=self.config.queue_capacity,
        )
        self.pool.start()
        self.registry.gauge("service.workers").set(self.config.workers)

    def stop(self) -> None:
        self.pool.stop()
        self.obs.event("server.stop")
        self.obs.stop()

    # -- job pipeline --------------------------------------------------------
    def prepare(self, request: dict, trace_id: str = "") -> tuple[dict | None, PreparedJob | None]:
        """Admission + cache probe; (response, None) or (None, prepared)."""
        registry = self.registry
        registry.counter("service.jobs.received").inc()
        t0 = time.monotonic()
        spec = resolve_spec(request, allow_chaos=self.config.allow_chaos)

        a0 = wall_now_us()
        depth = self.pool.depth()
        decision = self.admission.decide(depth, spec.kind, spec.fidelity)
        self.obs.event(
            "admission", action=decision.action, job_kind=spec.kind, depth=depth,
            requested=spec.fidelity, resolved=decision.fidelity,
            reason=decision.reason, trace_id=trace_id,
        )
        if trace_id:
            self.obs.span_at(
                "server.admission", a0, wall_now_us() - a0,
                trace_id=trace_id, action=decision.action, depth=depth,
                fidelity=decision.fidelity,
            )
        if decision.action != ACTION_ADMIT:
            registry.counter("service.jobs.rejected").inc()
            return {
                "status": STATUS_REJECTED,
                "reason": decision.reason,
                "retry_after_s": 0.5,
            }, None
        degraded = decision.degraded
        spec.fidelity = decision.fidelity
        if degraded:
            registry.counter("service.jobs.degraded").inc()
        registry.counter("service.jobs.admitted").inc()

        key = cache_key(spec)
        if spec.cache:
            cached = self.cache.get(key)
            if cached is not None:
                if trace_id:
                    self.obs.instant_at(
                        "server.cache_hit", wall_now_us(), trace_id=trace_id
                    )
                return self.job_response(
                    cached, degraded, decision.reason, cached=True, t0=t0
                ), None

        deadline = spec.deadline_s or self.config.default_deadline_s
        return None, PreparedJob(spec, key, degraded, decision.reason, deadline, t0)

    def make_job(
        self, prepared: PreparedJob, trace_id: str = "",
        stream: bool = False, partial_cb=None, done_cb=None,
    ) -> Job:
        """Build the pool job, wiring streaming/completion callbacks."""
        job = Job(prepared.spec, prepared.key, deadline_s=prepared.deadline_s)
        job.degraded = prepared.degraded
        job.degrade_reason = prepared.reason
        if trace_id:
            job.trace_id = trace_id
            job.payload["_trace"] = trace_id
        if stream:
            job.stream = True
            job.partial_cb = partial_cb
        job.done_cb = done_cb
        return job

    def finish(self, prepared: PreparedJob, job: Job) -> dict:
        """Fold a completed job into its response (caching on success)."""
        if job.status == STATUS_OK:
            if prepared.spec.cache and job.result is not None:
                self.cache.put(prepared.key, job.result)
            return self.job_response(
                job.result, prepared.degraded, prepared.reason, t0=prepared.t0
            )
        return {"status": job.status, "error": job.error}

    def lost_response(self) -> dict:
        """A job the pool never finished (the front door's never-hang
        guarantee fired past deadline + grace)."""
        self.registry.counter("service.jobs.lost").inc()
        return {"status": STATUS_ERROR, "error": "job lost by the pool"}

    def job_response(
        self, result: dict, degraded: bool, reason: str, cached: bool = False,
        t0: float = 0.0,
    ) -> dict:
        response = {
            "status": STATUS_DEGRADED if degraded else STATUS_OK,
            "result": result,
            "cached": cached,
        }
        if degraded:
            response["reason"] = reason
        if t0:
            from ..telemetry import LATENCY_BUCKETS_S

            self.registry.histogram(
                "service.latency.respond_s", LATENCY_BUCKETS_S
            ).observe(time.monotonic() - t0)
        return response

    # -- introspection -------------------------------------------------------
    def health(self) -> dict:
        return {
            "ok": self.pool.alive_workers() > 0,
            "address": self.config.address(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers_alive": self.pool.alive_workers(),
            "queue_depth": self.pool.depth(),
            "queue_capacity": self.config.queue_capacity,
            "degrade_enabled": self.admission.degrade_enabled,
        }

    def stats(self) -> dict:
        return {
            "health": self.health(),
            "pool": self.pool.stats(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "entries": len(self.cache),
            },
            "metrics": self.registry.as_dict(),
        }

    def metrics(self, dump: bool = False) -> dict:
        """The ``metrics`` request body: exposition + derived summary.

        The JSON snapshot, Prometheus text and p50/p95/p99 + shed-rate
        summary come straight off the live registry, so they work even
        with observability disabled; the observability extras (sample
        series, flight-dump paths, session id) ride along when the seam
        is on.  ``dump=True`` additionally writes a flight-recorder
        artifact and reports its path.
        """
        payload = {
            "json": self.registry.as_dict(),
            "prometheus": render_prometheus(self.registry),
            "summary": latency_summary(self.registry),
        }
        payload.update(self.obs.metrics_payload(dump=dump))
        return payload


class AnalysisServer:
    """The threaded DIFT-as-a-service daemon; see the module docstring."""

    def __init__(self, config: ServiceConfig, registry: MetricsRegistry | None = None):
        if (config.socket_path is None) == (config.port is None):
            raise ValueError("configure exactly one of socket_path or port")
        self.config = config
        self.core = ServiceCore(config, registry=registry)
        # Component attributes stay addressable on the server itself
        # (tests and the CLI reach for server.pool / server.obs / ...).
        self.registry = self.core.registry
        self.admission = self.core.admission
        self.cache = self.core.cache
        self.obs = self.core.obs
        self.pool = self.core.pool
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._running = False
        self._shutdown_requested = threading.Event()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "AnalysisServer":
        """Bind, start the pool, and begin accepting (non-blocking)."""
        config = self.config
        if config.port is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((config.host, config.port))
            if config.port == 0:  # ephemeral: record what the OS picked
                config.port = listener.getsockname()[1]
        else:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(config.socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(config.socket_path)
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self._running = True
        self.core.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`stop` or a ``shutdown`` request."""
        if not self._running:
            self.start()
        try:
            while self._running and not self._shutdown_requested.wait(timeout=0.2):
                pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, stop the pool, unlink."""
        if not self._running:
            return
        self._running = False
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for thread in list(self._conn_threads):
            thread.join(timeout=2.0)
        self.core.stop()
        if self.config.socket_path:
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)

    def __enter__(self) -> "AnalysisServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accept/handler threads ----------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            self._conn_threads.append(thread)
            thread.start()
            self._conn_threads = [t for t in self._conn_threads if t.is_alive()]

    def _handle_connection(self, conn: socket.socket) -> None:
        reader = FrameReader(conn)
        with contextlib.closing(conn):
            while self._running:
                try:
                    state, request = reader.poll(timeout_s=0.5)
                    if state == EOF:
                        return  # client closed cleanly
                    if state != FRAME:
                        continue  # idle poll tick; partial frames are buffered
                    response = self._dispatch(request, conn)
                    send_frame(conn, response)
                    if isinstance(request, dict) and request.get("kind") == "shutdown":
                        self._shutdown_requested.set()
                        return
                except ProtocolError as exc:
                    with contextlib.suppress(OSError):
                        send_frame(conn, {"status": STATUS_ERROR, "error": str(exc)})
                    return
                except OSError:
                    return

    # -- request dispatch ----------------------------------------------------
    def _dispatch(self, request, conn: socket.socket | None = None) -> dict:
        if not isinstance(request, dict):
            raise ProtocolError("request must be a JSON object")
        kind = request.get("kind")
        if kind == "stats":
            return {"status": STATUS_OK, "stats": self.stats()}
        if kind == "health":
            return {"status": STATUS_OK, "health": self.health()}
        if kind == "metrics":
            return {
                "status": STATUS_OK,
                "metrics": self.metrics(dump=bool(request.get("dump"))),
            }
        if kind == "shutdown":
            return {"status": STATUS_OK, "shutting_down": True}
        return self._dispatch_job(request, conn)

    def _dispatch_job(self, request: dict, conn: socket.socket | None = None) -> dict:
        w0 = wall_now_us()
        # Per-job tracing is request opt-in ("trace": true) *and* gated
        # on the daemon's observability seam; trace keys are transport
        # metadata resolve_spec ignores, so cache keys never see them.
        want_trace = bool(request.get("trace")) and self.obs.enabled
        trace_id = ""
        if want_trace:
            trace_id = str(request.get("trace_id") or "") or new_trace_id()
        stream = bool(request.get("stream")) and conn is not None
        response, worker_events = self._admit_and_run(request, trace_id, stream, conn)
        if want_trace:
            self.obs.span_at(
                "server.handle", w0, wall_now_us() - w0,
                trace_id=trace_id, status=response.get("status"),
            )
            response["trace"] = {
                "trace_id": trace_id,
                "events": self.obs.trace_events(trace_id) + list(worker_events),
            }
        return response

    def _admit_and_run(
        self, request: dict, trace_id: str,
        stream: bool = False, conn: socket.socket | None = None,
    ) -> tuple[dict, list]:
        response, prepared = self.core.prepare(request, trace_id)
        if response is not None:
            return response, []
        # Streamed partials are written by the pool slot thread, which
        # emits every partial strictly before it sets the completion
        # event the handler thread is parked on — so partial frames and
        # the terminal frame never interleave on the socket.  seq
        # restarts per crash-retry attempt; dropping seq <= last-seen
        # keeps the client's op stream exactly-once (the retried prefix
        # is a byte-identical replay).
        partial_cb = None
        if stream:
            state = {"last_seq": 0}

            def partial_cb(seq: int, op: dict) -> None:
                if seq <= state["last_seq"]:
                    return
                state["last_seq"] = seq
                send_frame(conn, {"status": STATUS_PARTIAL, "seq": seq, "op": op})

        job = self.core.make_job(prepared, trace_id, stream=stream, partial_cb=partial_cb)
        self.pool.submit(job)
        if not job.event.wait(timeout=prepared.grace_deadline_s):
            # The pool should have timed the job out itself; this is the
            # handler's own never-hang guarantee.
            return self.core.lost_response(), []
        return self.core.finish(prepared, job), job.worker_events

    # -- introspection -------------------------------------------------------
    def health(self) -> dict:
        return self.core.health()

    def stats(self) -> dict:
        return self.core.stats()

    def metrics(self, dump: bool = False) -> dict:
        return self.core.metrics(dump=dump)


__all__ = [
    "AnalysisServer",
    "DEFAULT_DEADLINE_S",
    "PreparedJob",
    "ServiceConfig",
    "ServiceCore",
]
