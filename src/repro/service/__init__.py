"""DIFT-as-a-service: a sharded analysis-job daemon.

PRs 1-4 made every analysis in this repo (tracing, slicing, attack
detection, lineage) a one-shot in-process call.  This package turns
them into a long-lived *service* — the deployment shape the paper's
production-run ambitions (and HardTaint's always-on argument) actually
require:

* :mod:`protocol` — length-prefixed framed JSON over a Unix/TCP socket.
* :mod:`jobs` — job specs (trace / slice / attack / lineage over a
  named workload or submitted MiniC source), the fidelity ladder, and
  the pure ``execute`` function worker processes run.
* :mod:`admission` — bounded admission with backpressure: overload
  sheds *fidelity* first (full tracing -> DIFT-only -> logging-only,
  the paper's cheap-logging/expensive-replay split) and *jobs* only at
  the hard capacity wall (explicit REJECTED, never a hang).
* :mod:`cache` — idempotent result cache keyed by
  (kind, program hash, params, fidelity); repeats are bit-identical.
* :mod:`pool` — the sharded worker-process pool: affinity routing by
  program hash with idle-steal, per-job deadlines with cancellation,
  crash detection and bounded respawn/backoff with one retry.
* :mod:`server` / :mod:`client` — the accept loop + blocking client
  (also reachable as ``repro serve`` / ``repro submit``).
* :mod:`aserver` — the :mod:`asyncio` front door: one event loop,
  coroutine per connection, streamed ``partial`` result frames
  (``repro serve --async``); same :class:`~repro.service.server.ServiceCore`,
  byte-identical terminal responses.
* :mod:`router` — the scale-out tier: consistent-hash sharding of job
  requests across N daemons by program identity, health mark-down/up,
  draining, crash rerouting with exactly-once partial relay, and a
  router-level result cache (``repro route``).

Everything threads ``service.*`` / ``aserver.*`` / ``router.*``
telemetry through :class:`repro.telemetry.MetricsRegistry`; ``STATS``
and ``HEALTH`` requests expose the same snapshot over the wire.
"""

from .admission import AdmissionController, AdmissionDecision
from .aserver import AsyncAnalysisServer, make_server
from .cache import ResultCache
from .client import (
    ServiceClient,
    ServiceError,
    ServiceProtocolError,
    wait_until_ready,
)
from .jobs import (
    FIDELITY_LADDER,
    JOB_KINDS,
    JobSpec,
    cache_key,
    execute_job,
    execute_job_stream,
    execute_job_traced,
    program_key,
    resolve_spec,
)
from .observe import NULL_OBSERVABILITY, ServiceObservability
from .pool import WorkerPool
from .protocol import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    FrameAssembler,
    ProtocolError,
    apply_stream_op,
    reassemble,
    recv_frame,
    send_frame,
)
from .router import HashRing, RouterConfig, RouterServer, routing_key
from .server import AnalysisServer, ServiceConfig, ServiceCore

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AnalysisServer",
    "AsyncAnalysisServer",
    "FIDELITY_LADDER",
    "FrameAssembler",
    "HashRing",
    "JOB_KINDS",
    "JobSpec",
    "NULL_OBSERVABILITY",
    "ProtocolError",
    "ResultCache",
    "RouterConfig",
    "RouterServer",
    "ServiceObservability",
    "ServiceClient",
    "ServiceConfig",
    "ServiceCore",
    "ServiceError",
    "ServiceProtocolError",
    "STATUS_DEGRADED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_PARTIAL",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "WorkerPool",
    "apply_stream_op",
    "cache_key",
    "execute_job",
    "execute_job_stream",
    "execute_job_traced",
    "make_server",
    "program_key",
    "reassemble",
    "recv_frame",
    "routing_key",
    "send_frame",
    "resolve_spec",
    "wait_until_ready",
]
