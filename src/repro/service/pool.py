"""Sharded worker-process pool with deadlines, cancellation and respawn.

One worker = one OS process running :func:`repro.service.jobs.execute_job`
in a loop over a duplex pipe (the spawn-and-pipe pattern of
:mod:`repro.multicore.parallel`, minus the shared-memory ring — jobs
are coarse, so a pipe is plenty).  Each worker is paired with one
server-side *slot thread* that feeds it jobs and babysits it:

* **Sharding with idle-steal.**  Jobs route to ``hash(program hash) %
  workers``, so repeated queries over the same program land on the
  same worker (warm CPU caches, warm interpreter state); an idle slot
  steals from the longest other queue, so affinity never costs
  throughput.
* **Deadlines with cancellation.**  The slot thread polls the pipe in
  small ticks; when a job's absolute deadline passes, the worker is
  terminated (the only way to cancel a compute-bound job in another
  process), respawned, and the job answered ``timeout``.
* **Crash detection + bounded respawn.**  A worker that dies mid-job
  is respawned with exponential backoff; the job is retried up to
  ``max_retries`` times, then failed cleanly (``error``, never a
  hang).  A slot that crash-loops past ``respawn_limit`` consecutive
  deaths is declared dead and its queue re-routed; the counter resets
  on any successful job.

The pool never hangs a caller: every submitted job's ``event`` is set
exactly once, with ``ok`` / ``error`` / ``timeout``, even across
worker death and pool shutdown.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from collections import deque

from ..telemetry import LATENCY_BUCKETS_S, NULL_REGISTRY
from ..telemetry.obs import wall_now_us
from .jobs import (
    JobSpec,
    drain_summary_metrics,
    execute_job,
    execute_job_stream,
    execute_job_traced,
    program_key,
)
from .observe import NULL_OBSERVABILITY
from .protocol import STATUS_ERROR, STATUS_OK, STATUS_TIMEOUT

_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)

#: pipe poll tick: bounds deadline/crash detection latency.
_POLL_S = 0.02


def _worker_main(conn) -> None:
    """Worker process loop: recv payload -> execute -> send verdict."""
    try:
        while True:
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                break
            if payload is None:
                break
            # "_trace" / "_stream" are transport metadata the server
            # attaches per job, never part of the spec (or cache key).
            trace_id = payload.pop("_trace", None) if isinstance(payload, dict) else None
            stream = bool(payload.pop("_stream", None)) if isinstance(payload, dict) else False
            try:
                if trace_id:
                    # Traced jobs ship spans in the terminal result;
                    # tracing and streaming are mutually exclusive
                    # (the server never sets both).
                    result = execute_job_traced(payload, trace_id)
                elif stream:
                    result = execute_job_stream(
                        payload, lambda op: conn.send(("partial", op))
                    )
                else:
                    result = execute_job(payload)
                metrics = drain_summary_metrics()
                if metrics and isinstance(result, dict):
                    # Piggyback function-summary counter deltas on the
                    # terminal verdict (never on stream frames, so the
                    # reassembled stream stays identical to a blocking
                    # run's payload); the server strips them below.
                    result["_summaries"] = metrics
                verdict = ("ok", result)
            except Exception as exc:
                verdict = ("error", f"{type(exc).__name__}: {exc}")
            try:
                conn.send(verdict)
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()


class Job:
    """One admitted job: spec + completion state the server waits on."""

    _ids = itertools.count(1)

    def __init__(self, spec: JobSpec, key: str, deadline_s: float | None = None):
        self.id = next(self._ids)
        self.spec = spec
        self.payload = spec.payload()
        self.key = key
        self.shard_key = program_key(spec)
        self.degraded = False
        self.degrade_reason = ""
        #: distributed-tracing state: empty trace_id = untraced job.
        self.trace_id = ""
        self.worker_events: list[dict] = []
        #: streaming state: ``stream`` marks the worker payload,
        #: ``partial_cb(seq, op)`` is invoked on the slot thread for
        #: every partial the worker ships.  ``partial_seq`` restarts at
        #: 0 on every execution attempt, so a consumer that drops
        #: ``seq <= last seen`` gets exactly-once partials across
        #: crash-retries (execution is deterministic: a retried attempt
        #: replays an identical prefix).
        self.stream = False
        self.partial_cb = None
        self.partial_seq = 0
        self.partials_delivered = 0
        #: invoked (on the finishing thread) right after ``event`` is
        #: set — the async server's loop-wakeup seam.
        self.done_cb = None
        now = time.monotonic()
        self.t_submit = now
        self.w_submit = wall_now_us()
        self.w_start = 0
        self.t_start = 0.0
        self.t_done = 0.0
        self.deadline = None if deadline_s is None else now + deadline_s
        self.attempts = 0
        self.status: str | None = None
        self.result: dict | None = None
        self.error = ""
        self.event = threading.Event()

    def finish(self, status: str, result: dict | None = None, error: str = "") -> None:
        self.t_done = time.monotonic()
        self.status = status
        self.result = result
        self.error = error
        self.event.set()
        callback = self.done_cb
        if callback is not None:
            try:
                callback()
            except Exception:  # pragma: no cover - callback owner's bug
                pass

    def deliver_partial(self, op: dict) -> None:
        """Forward one worker partial to the registered consumer."""
        self.partial_seq += 1
        self.partials_delivered += 1
        callback = self.partial_cb
        if callback is not None:
            try:
                callback(self.partial_seq, op)
            except Exception:  # pragma: no cover - callback owner's bug
                pass

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline


class _Slot:
    """One worker process + its server-side state."""

    def __init__(self, idx: int):
        self.idx = idx
        self.proc = None
        self.conn = None
        self.busy = False
        self.dead = False
        self.respawns = 0
        self.consecutive_respawns = 0
        self.jobs_done = 0


class WorkerPool:
    """Sharded pool of analysis workers; see the module docstring."""

    def __init__(
        self,
        workers: int = 2,
        registry=None,
        max_retries: int = 1,
        respawn_limit: int = 3,
        backoff_s: float = 0.05,
        obs=None,
    ):
        if workers < 1:
            raise ValueError("pool needs >= 1 worker")
        self.workers = workers
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.obs = obs if obs is not None else NULL_OBSERVABILITY
        self.max_retries = max_retries
        self.respawn_limit = respawn_limit
        self.backoff_s = backoff_s
        self._slots = [_Slot(i) for i in range(workers)]
        self._queues: list[deque[Job]] = [deque() for _ in range(workers)]
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._running = False
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_timed_out = 0
        self.jobs_retried = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "WorkerPool":
        self._running = True
        for slot in self._slots:
            self._spawn(slot)
            thread = threading.Thread(
                target=self._slot_loop, args=(slot,), name=f"pool-slot-{slot.idx}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def _spawn(self, slot: _Slot) -> None:
        parent_conn, child_conn = _CTX.Pipe(duplex=True)
        proc = _CTX.Process(target=_worker_main, args=(child_conn,), daemon=True)
        proc.start()
        child_conn.close()
        slot.proc, slot.conn = proc, parent_conn
        self.obs.event("worker.spawn", slot=slot.idx, pid=proc.pid)

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop threads, terminate workers, fail anything still queued."""
        with self._cond:
            self._running = False
            leftovers = [job for q in self._queues for job in q]
            for q in self._queues:
                q.clear()
            self._cond.notify_all()
        for job in leftovers:
            job.finish(STATUS_ERROR, error="service shutting down")
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        for slot in self._slots:
            if slot.conn is not None:
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            if slot.proc is not None:
                slot.proc.join(timeout=0.5)
                if slot.proc.is_alive():
                    slot.proc.terminate()
                    slot.proc.join(timeout=1.0)
            if slot.conn is not None:
                slot.conn.close()
                slot.conn = None

    # -- submission ----------------------------------------------------------
    def depth(self) -> int:
        """Admitted-but-unfinished jobs (queued + running)."""
        with self._lock:
            return self._depth_locked()

    def _depth_locked(self) -> int:
        return sum(len(q) for q in self._queues) + sum(
            1 for s in self._slots if s.busy
        )

    def submit(self, job: Job) -> None:
        """Route to the job's shard (dead shards fall to the next slot)."""
        if job.stream:
            job.payload["_stream"] = True
        shard = hash(job.shard_key) % self.workers
        with self._cond:
            if not self._running:
                job.finish(STATUS_ERROR, error="service shutting down")
                return
            for off in range(self.workers):
                slot = self._slots[(shard + off) % self.workers]
                if not slot.dead:
                    shard = slot.idx
                    break
            else:
                job.finish(STATUS_ERROR, error="no live workers")
                return
            self._queues[shard].append(job)
            self.registry.gauge("service.queue.depth").set(self._depth_locked())
            self.registry.gauge("service.queue.depth.peak").set_max(self._depth_locked())
            self._cond.notify_all()
        self.obs.event(
            "dispatch", job=job.id, job_kind=job.spec.kind, shard=shard,
            trace_id=job.trace_id,
        )

    def _take(self, slot: _Slot) -> Job | None:
        """Own queue first, else steal from the longest; None = stopped."""
        with self._cond:
            while True:
                if not self._running:
                    return None
                own = self._queues[slot.idx]
                if own:
                    job = own.popleft()
                else:
                    richest = max(
                        (q for q in self._queues if q), key=len, default=None
                    )
                    if richest is None:
                        self._cond.wait(timeout=0.1)
                        continue
                    job = richest.popleft()
                    self.registry.counter("service.pool.steals").inc()
                    self.obs.event("steal", slot=slot.idx, job=job.id)
                slot.busy = True
                self.registry.gauge("service.queue.depth").set(self._depth_locked())
                return job

    # -- execution -----------------------------------------------------------
    def _slot_loop(self, slot: _Slot) -> None:
        while True:
            job = self._take(slot)
            if job is None:
                return
            try:
                self._run_job(slot, job)
            finally:
                with self._cond:
                    slot.busy = False
                    self.registry.gauge("service.queue.depth").set(self._depth_locked())
            if slot.dead:
                self._reroute(slot)
                return

    def _run_job(self, slot: _Slot, job: Job) -> None:
        registry = self.registry
        while True:  # retry loop (worker-crash recovery)
            if not self._running:
                job.finish(STATUS_ERROR, error="service shutting down")
                return
            if job.expired:
                self.jobs_timed_out += 1
                registry.counter("service.jobs.timeouts").inc()
                self.obs.event("deadline.queue-expired", slot=slot.idx, job=job.id)
                job.finish(STATUS_TIMEOUT, error="deadline expired in queue")
                return
            if slot.proc is None or not slot.proc.is_alive():
                if not self._respawn(slot):
                    job.finish(STATUS_ERROR, error="worker unavailable (crash loop)")
                    self.jobs_failed += 1
                    registry.counter("service.jobs.failed").inc()
                    return
            job.attempts += 1
            # Restart the partial numbering per attempt: a crash-retried
            # stream replays its (deterministic) prefix, and consumers
            # drop seqs they have already seen.
            job.partial_seq = 0
            job.t_start = job.t_start or time.monotonic()
            job.w_start = job.w_start or wall_now_us()
            try:
                slot.conn.send(job.payload)
                verdict = self._await_verdict(slot, job)
            except (BrokenPipeError, OSError):
                # The pipe broke mid-send: the worker's state is unknown
                # (it could even send a stale verdict later), so it must
                # not be reused — kill it and let the retry loop respawn.
                self._note_crash(slot)
                if slot.proc is not None and slot.proc.is_alive():
                    slot.proc.terminate()
                    slot.proc.join(timeout=1.0)
                verdict = "retry"
            if verdict == "retry":
                if job.attempts <= self.max_retries:
                    self.jobs_retried += 1
                    registry.counter("service.jobs.retries").inc()
                    continue
                job.finish(
                    STATUS_ERROR,
                    error=f"worker crashed {job.attempts}x running this job",
                )
                self.jobs_failed += 1
                registry.counter("service.jobs.failed").inc()
            return

    def _await_verdict(self, slot: _Slot, job: Job) -> str:
        """Poll the worker for one job's verdict; returns "done"/"retry"."""
        registry = self.registry
        conn, proc = slot.conn, slot.proc
        while True:
            if conn.poll(_POLL_S):
                try:
                    status, body = conn.recv()
                except (EOFError, OSError):
                    self._note_crash(slot)
                    return "retry"
                if status == "partial":
                    # An incremental frame of a streamed job — forward
                    # and keep waiting for the terminal verdict.
                    registry.counter("service.stream.partials").inc()
                    job.deliver_partial(body)
                    continue
                slot.consecutive_respawns = 0
                slot.jobs_done += 1
                if status == "ok":
                    if isinstance(body, dict):
                        # Traced workers ride their span events back
                        # inside the result; strip them *before* the
                        # result is finished (and possibly cached) so
                        # cached payloads stay bit-identical.
                        spans = body.pop("_spans", None)
                        if spans:
                            job.worker_events = spans
                        # Same treatment for the summary counter deltas:
                        # fold into the service registry, keep the
                        # cached result byte-identical.
                        summaries = body.pop("_summaries", None)
                        if summaries:
                            for key, value in summaries.items():
                                registry.counter(f"dift.summaries.{key}").inc(value)
                    self.jobs_completed += 1
                    registry.counter("service.jobs.completed").inc()
                    self._observe_latency(job, slot)
                    job.finish(STATUS_OK, result=body)
                else:
                    self.jobs_failed += 1
                    registry.counter("service.jobs.failed").inc()
                    job.finish(STATUS_ERROR, error=body)
                return "done"
            if job.expired:
                # Cancellation: a compute-bound job in another process
                # can only be stopped by terminating the process.
                proc.terminate()
                proc.join(timeout=1.0)
                self.obs.event(
                    "deadline.cancel", slot=slot.idx, job=job.id,
                    job_kind=job.spec.kind, attempts=job.attempts,
                )
                self.obs.crash_dump("deadline-cancel", slot=slot.idx, job=job.id)
                self._respawn(slot, deliberate=True)
                self.jobs_timed_out += 1
                registry.counter("service.jobs.timeouts").inc()
                job.finish(STATUS_TIMEOUT, error="deadline expired; worker cancelled")
                return "done"
            if not proc.is_alive():
                self._note_crash(slot)
                return "retry"

    def _note_crash(self, slot: _Slot) -> None:
        self.registry.counter("service.workers.crashes").inc()
        pid = slot.proc.pid if slot.proc is not None else None
        self.obs.event("worker.crash", slot=slot.idx, pid=pid)
        self.obs.crash_dump("worker-crash", slot=slot.idx, pid=pid)
        # Reap the dying worker now: pipe EOF can be observed a moment
        # *before* the exiting child becomes waitable, and the retry
        # loop's is_alive() check must not see that zombie window (it
        # would skip the respawn and burn a retry on a dead pipe).
        if slot.proc is not None:
            slot.proc.join(timeout=1.0)

    def _respawn(self, slot: _Slot, deliberate: bool = False) -> bool:
        """Backed-off respawn; False once the slot crash-looped out.

        ``deliberate`` marks respawns the pool *chose* (deadline
        cancellation): they skip the backoff and never count toward the
        crash-loop limit — only unexpected deaths do.
        """
        if slot.conn is not None:
            slot.conn.close()
            slot.conn = None
        if slot.proc is not None:
            if slot.proc.is_alive():
                slot.proc.terminate()
            slot.proc.join(timeout=1.0)
            slot.proc = None
        slot.respawns += 1
        self.registry.counter("service.workers.respawns").inc()
        self.obs.event("worker.respawn", slot=slot.idx, deliberate=deliberate,
                       consecutive=slot.consecutive_respawns)
        if not deliberate:
            slot.consecutive_respawns += 1
            if slot.consecutive_respawns > self.respawn_limit:
                slot.dead = True
                self.registry.counter("service.workers.dead").inc()
                self.obs.event("worker.dead", slot=slot.idx,
                               consecutive=slot.consecutive_respawns)
                self.obs.crash_dump("crash-loop", slot=slot.idx)
                return False
            time.sleep(
                min(self.backoff_s * (2 ** (slot.consecutive_respawns - 1)), 1.0)
            )
        self._spawn(slot)
        return True

    def _reroute(self, dead: _Slot) -> None:
        """Move a dead slot's queue to the remaining live slots."""
        with self._cond:
            orphans = list(self._queues[dead.idx])
            self._queues[dead.idx].clear()
            live = [s for s in self._slots if not s.dead]
            if not live:
                for job in orphans:
                    job.finish(STATUS_ERROR, error="no live workers")
                return
            for i, job in enumerate(orphans):
                self._queues[live[i % len(live)].idx].append(job)
            self._cond.notify_all()

    def _observe_latency(self, job: Job, slot: _Slot | None = None) -> None:
        registry = self.registry
        queue_s = max(0.0, job.t_start - job.t_submit)
        exec_s = max(0.0, time.monotonic() - job.t_start)
        registry.histogram("service.latency.queue_s", LATENCY_BUCKETS_S).observe(queue_s)
        registry.histogram("service.latency.exec_s", LATENCY_BUCKETS_S).observe(exec_s)
        registry.histogram("service.latency.total_s", LATENCY_BUCKETS_S).observe(
            queue_s + exec_s
        )
        if job.trace_id:
            # Retroactive spans: the slot thread learns the stage edges
            # after the fact, so open-span bookkeeping never crosses
            # threads.  tid 0 is the handler lane, slots get 1 + idx.
            tid = 1 + (slot.idx if slot is not None else 0)
            self.obs.span_at(
                "pool.queue", job.w_submit, job.w_start - job.w_submit,
                tid=tid, trace_id=job.trace_id, job=job.id,
            )
            self.obs.span_at(
                "pool.exec", job.w_start, wall_now_us() - job.w_start,
                tid=tid, trace_id=job.trace_id, job=job.id,
                attempts=job.attempts,
            )

    # -- introspection -------------------------------------------------------
    def alive_workers(self) -> int:
        return sum(
            1
            for s in self._slots
            if not s.dead and s.proc is not None and s.proc.is_alive()
        )

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "alive": sum(1 for s in self._slots if not s.dead),
                "busy": sum(1 for s in self._slots if s.busy),
                "depth": self._depth_locked(),
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "timeouts": self.jobs_timed_out,
                "retries": self.jobs_retried,
                "respawns": sum(s.respawns for s in self._slots),
                "per_worker": [
                    {
                        "idx": s.idx,
                        "alive": not s.dead,
                        "busy": s.busy,
                        "jobs_done": s.jobs_done,
                        "respawns": s.respawns,
                        "queued": len(self._queues[s.idx]),
                    }
                    for s in self._slots
                ],
            }


__all__ = ["Job", "WorkerPool"]
