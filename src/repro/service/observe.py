"""Per-daemon observability: trace spans, flight ring, metrics sampler.

One :class:`ServiceObservability` is owned by one
:class:`~repro.service.server.AnalysisServer` and shared (by reference)
with its :class:`~repro.service.pool.WorkerPool`.  It bundles the three
tentpole pieces behind a single seam:

* a :class:`~repro.telemetry.obs.WallSpanTracer` holding the service
  tier's wall-clock spans, tagged with per-job trace ids so one job's
  client → server → admission → pool → worker story filters out of the
  shared ring;
* a :class:`~repro.telemetry.obs.FlightRecorder` ring of structured
  events, dumped to ``flight-<session>-<n>.json`` artifacts on worker
  crash, crash-loop slot death, deadline cancellation, or on demand;
* a :class:`~repro.telemetry.obs.MetricsWindow` the background sampler
  thread fills with registry snapshots every ``sample_interval_s``.

Cost discipline matches the telemetry package: the disabled counterpart
is :data:`NULL_OBSERVABILITY`, whose hooks are argument-swallowing
no-ops, so instrumented service code calls ``obs.event(...)`` /
``obs.span_at(...)`` unconditionally and a daemon started with
``observe=False`` (or ``REPRO_SERVICE_OBSERVE=0``) pays one attribute
load per hook on the job path — and nothing at all on the per-record /
per-instruction paths, which this module never touches.
"""

from __future__ import annotations

import os
import threading

from ..telemetry import MetricsRegistry
from ..util.artifacts import run_artifact_dir
from ..telemetry.obs import (
    FlightRecorder,
    MetricsWindow,
    WallSpanTracer,
    chrome_trace,
    latency_summary,
    new_trace_id,
    render_prometheus,
)


class ServiceObservability:
    """Live observability state for one daemon; see the module docstring."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry,
        dump_dir: str | None = None,
        sample_interval_s: float = 1.0,
        ring_events: int = 512,
        max_spans: int = 4096,
        window_samples: int = 600,
    ):
        self.registry = registry
        self.session = new_trace_id()
        # Crash artifacts land in a dedicated subdirectory (created on
        # first dump) instead of littering the working directory.
        self.dump_dir = run_artifact_dir("flights", dump_dir)
        self.sample_interval_s = sample_interval_s
        self.flight = FlightRecorder(ring_events)
        self.tracer = WallSpanTracer(enabled=True, max_events=max_spans)
        self.window = MetricsWindow(window_samples)
        self.dumps: list[str] = []
        self._dump_lock = threading.Lock()
        self._stop = threading.Event()
        self._sampler: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ServiceObservability":
        """Start the background metrics sampler (idempotent)."""
        if self._sampler is None or not self._sampler.is_alive():
            self._stop.clear()
            self._sampler = threading.Thread(
                target=self._sample_loop, name="service-obs-sampler", daemon=True
            )
            self._sampler.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._sampler is not None:
            self._sampler.join(timeout=2.0)
            self._sampler = None

    def _sample_loop(self) -> None:
        # Sample immediately so even a short-lived daemon has one point.
        self.window.sample(self.registry)
        while not self._stop.wait(timeout=self.sample_interval_s):
            self.window.sample(self.registry)

    # -- hooks (the pool and server call these unconditionally) --------------
    def event(self, kind: str, **fields) -> None:
        """Record one structured flight-recorder event."""
        self.flight.record(kind, **fields)

    def span_at(self, name: str, ts_us: int, dur_us: int, tid: int = 0, **args) -> None:
        self.tracer.span_at(name, ts_us, dur_us, tid=tid, **args)

    def instant_at(self, name: str, ts_us: int, tid: int = 0, **args) -> None:
        self.tracer.instant_at(name, ts_us, tid=tid, **args)

    def trace_events(self, trace_id: str) -> list[dict]:
        """This process's span events for one job's trace id."""
        return self.tracer.chrome_events(trace_id)

    def crash_dump(self, reason: str, **extra) -> str | None:
        """Dump the flight ring to a JSON artifact; returns its path."""
        with self._dump_lock:
            name = f"flight-{self.session}-{len(self.dumps) + 1:03d}.json"
            path = os.path.join(self.dump_dir, name)
            try:
                os.makedirs(self.dump_dir, exist_ok=True)
                self.flight.dump(path, reason, session=self.session, **extra)
            except OSError:
                return None
            self.dumps.append(path)
        self.flight.record("flight.dump", reason=reason, path=path)
        return path

    # -- exposition ----------------------------------------------------------
    def metrics_payload(self, dump: bool = False) -> dict:
        """The observability extras a ``metrics`` response carries."""
        payload = {
            "session": self.session,
            "series": self.window.series(),
            "flight_events": self.flight.recorded,
            "dumps": list(self.dumps),
        }
        if dump:
            payload["dump_path"] = self.crash_dump("on-demand")
        return payload

    def session_trace(self) -> dict:
        """Every span the daemon holds, as one Chrome trace object."""
        return chrome_trace(self.tracer.chrome_events())


class _NullObservability:
    """Disabled seam: every hook is a no-op, every read is empty."""

    enabled = False
    session = ""
    dumps: list[str] = []

    def start(self) -> "_NullObservability":
        return self

    def stop(self) -> None:
        pass

    def event(self, kind: str, **fields) -> None:
        pass

    def span_at(self, name: str, ts_us: int, dur_us: int, tid: int = 0, **args) -> None:
        pass

    def instant_at(self, name: str, ts_us: int, tid: int = 0, **args) -> None:
        pass

    def trace_events(self, trace_id: str) -> list[dict]:
        return []

    def crash_dump(self, reason: str, **extra) -> None:
        return None

    def metrics_payload(self, dump: bool = False) -> dict:
        return {}

    def session_trace(self) -> dict:
        return chrome_trace([])


#: Shared disabled instance (stateless, so sharing is safe).
NULL_OBSERVABILITY = _NullObservability()

__all__ = [
    "NULL_OBSERVABILITY",
    "ServiceObservability",
    "latency_summary",
    "render_prometheus",
]
