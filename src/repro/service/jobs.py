"""Analysis job specs, the fidelity ladder, and worker-side execution.

A job names an analysis ``kind`` (trace / slice / attack / lineage)
over a *program* — either a named workload from the SPEC-like suite or
submitted MiniC source — plus kind-specific ``params``.  Execution is
a pure function of the spec (the interpreter is deterministic), which
is what makes the service's result cache idempotent: the same spec
always produces the byte-identical result payload.

**Fidelity ladder** (§2.2's cheap-logging/expensive-replay split as a
live degradation policy): under overload the admission controller
sheds fidelity before it sheds jobs.

==========  =========================================================
``full``    the real analysis: ONTRAC tracing, indexed slicing,
            PC-taint attack monitoring (names the root cause), roBDD
            lineage
``dift``    DIFT-only: taint propagation without the trace store —
            ``trace`` returns taint stats instead of a DDG; ``attack``
            falls back to boolean taint (detects, cannot explain —
            E11's ablation as a degradation step)
``log``     logging-only: a plain run; outputs and cycle counts, no
            dependence analysis at all
==========  =========================================================

Kinds without a meaningful middle rung skip straight to ``log``.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field

from .. import fastpath
from ..dift.engine import DIFTEngine, SinkRule
from ..dift.policy import BoolTaintPolicy, PCTaintPolicy
from ..dift.summaries import SummaryCache, cache_signature, summarizable
from ..lang import compile_source
from ..ontrac import OntracConfig
from ..runner import ProgramRunner
from ..slicing import backward_slice
from ..workloads.generators import call_heavy
from ..workloads.spec_like import bfs, fsm, hashloop, matmul, rle, sort
from .protocol import ProtocolError

JOB_KINDS = ("trace", "slice", "attack", "lineage")

FIDELITY_FULL = "full"
FIDELITY_DIFT = "dift"
FIDELITY_LOG = "log"

#: per-kind degradation ladder, most expensive first.
FIDELITY_LADDER: dict[str, tuple[str, ...]] = {
    "trace": (FIDELITY_FULL, FIDELITY_DIFT, FIDELITY_LOG),
    "slice": (FIDELITY_FULL, FIDELITY_LOG),
    "attack": (FIDELITY_FULL, FIDELITY_DIFT, FIDELITY_LOG),
    "lineage": (FIDELITY_FULL, FIDELITY_LOG),
}

#: named programs submittable by name; multipliers match ``suite(scale)``.
WORKLOAD_FACTORIES = {
    "matmul": lambda s: matmul(8 * s),
    "sort": lambda s: sort(48 * s),
    "hashloop": lambda s: hashloop(96 * s),
    "rle": lambda s: rle(80 * s),
    "bfs": lambda s: bfs(6 * s),
    "fsm": lambda s: fsm(120 * s),
    # Call-heavy family: summary-friendly (p0) through summary-hostile
    # (p50, every other call diverges) — see workloads.generators.
    "calls-p0": lambda s: call_heavy(0, iterations=48 * s, name="calls-p0"),
    "calls-p10": lambda s: call_heavy(10, iterations=48 * s, name="calls-p10"),
    "calls-p50": lambda s: call_heavy(2, iterations=48 * s, name="calls-p50"),
}

#: test-only kind that crashes/misbehaves inside the worker process so
#: the pool's crash-recovery machinery can be exercised deterministically.
#: Only admitted when the server was started with ``allow_chaos=True``.
CHAOS_KIND = "chaos"


@dataclass
class JobSpec:
    """One validated analysis job."""

    kind: str
    fidelity: str = FIDELITY_FULL
    workload: str | None = None
    scale: int = 1
    source: str | None = None
    params: dict = field(default_factory=dict)
    cache: bool = True
    deadline_s: float | None = None

    def payload(self) -> dict:
        """The wire/worker form (plain JSON-safe dict)."""
        return {
            "kind": self.kind,
            "fidelity": self.fidelity,
            "workload": self.workload,
            "scale": self.scale,
            "source": self.source,
            "params": self.params,
        }


def resolve_spec(payload: dict, allow_chaos: bool = False) -> JobSpec:
    """Validate a request payload into a :class:`JobSpec`.

    Raises :class:`ProtocolError` with a one-line message on anything
    malformed — the server turns that into a clean ``error`` response.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    kind = payload.get("kind")
    if kind == CHAOS_KIND:
        if not allow_chaos:
            raise ProtocolError("chaos jobs are not enabled on this server")
    elif kind not in JOB_KINDS:
        raise ProtocolError(f"unknown job kind {kind!r} (expected one of {JOB_KINDS})")
    fidelity = payload.get("fidelity", FIDELITY_FULL)
    ladder = FIDELITY_LADDER.get(kind, (FIDELITY_FULL,))
    if kind != CHAOS_KIND and fidelity not in ladder:
        raise ProtocolError(f"kind {kind!r} has no fidelity {fidelity!r} (ladder {ladder})")
    workload = payload.get("workload")
    source = payload.get("source")
    if kind != CHAOS_KIND:
        if (workload is None) == (source is None):
            raise ProtocolError("exactly one of 'workload' or 'source' is required")
        if workload is not None and workload not in WORKLOAD_FACTORIES:
            raise ProtocolError(
                f"unknown workload {workload!r} "
                f"(available: {', '.join(sorted(WORKLOAD_FACTORIES))})"
            )
    scale = payload.get("scale", 1)
    if not isinstance(scale, int) or scale < 1:
        raise ProtocolError("'scale' must be a positive integer")
    params = payload.get("params") or {}
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object")
    deadline = payload.get("deadline_s")
    if deadline is not None and (not isinstance(deadline, (int, float)) or deadline <= 0):
        raise ProtocolError("'deadline_s' must be a positive number")
    return JobSpec(
        kind=kind,
        fidelity=fidelity,
        workload=workload,
        scale=scale,
        source=source,
        params=params,
        cache=bool(payload.get("cache", True)),
        deadline_s=deadline,
    )


def program_key(spec: JobSpec) -> str:
    """Stable identity of the program a spec runs (for cache/sharding)."""
    if spec.source is not None:
        digest = hashlib.sha256(spec.source.encode("utf-8")).hexdigest()[:16]
        return f"src:{digest}"
    return f"workload:{spec.workload}:{spec.scale}"


def cache_key(spec: JobSpec) -> str:
    """Idempotency key: (kind, program hash, params, fidelity).

    The *resolved* fidelity is part of the key, so a degraded result
    can never be served to a client that asked for (and got) ``full``.
    """
    params = json.dumps(spec.params, sort_keys=True, separators=(",", ":"))
    return f"{spec.kind}|{program_key(spec)}|{spec.fidelity}|{params}"


# ---------------------------------------------------------------------------
# Function-summary caches (worker-side, survive across requests)
# ---------------------------------------------------------------------------
#: (program key, configuration signature) -> SummaryCache, LRU-bounded.
#: Keyed alongside the result cache: the signature folds in the policy
#: class (i.e. the resolved fidelity) and sink config, so a summary
#: learned under ``dift`` (bool labels) can never serve a ``full``
#: (PC-label) request for the same program.
_SUMMARY_CACHES: OrderedDict[tuple[str, str], SummaryCache] = OrderedDict()
_SUMMARY_CACHE_BOUND = 64

#: dift.summaries.* counter deltas accumulated since the last drain.
_summary_pending: dict[str, int] = {}


def _payload_program_key(payload: dict) -> str:
    """:func:`program_key` over the worker-form payload dict."""
    if payload.get("source") is not None:
        digest = hashlib.sha256(payload["source"].encode("utf-8")).hexdigest()[:16]
        return f"src:{digest}"
    return f"workload:{payload.get('workload')}:{payload.get('scale', 1)}"


def _summary_cache_for(payload: dict, policy, sinks) -> SummaryCache | None:
    """Long-lived summary cache for (program, engine configuration).

    Returns ``None`` when the fast path is off or the policy is not
    summarizable; the engine then runs exactly as before.
    """
    if not fastpath.resolve(None, "summaries") or not summarizable(policy):
        return None
    sig = cache_signature(policy, None, sinks, False)
    key = (_payload_program_key(payload), sig)
    cache = _SUMMARY_CACHES.pop(key, None)
    if cache is None:
        cache = SummaryCache(sig)
    _SUMMARY_CACHES[key] = cache
    while len(_SUMMARY_CACHES) > _SUMMARY_CACHE_BOUND:
        _SUMMARY_CACHES.popitem(last=False)
    return cache


def _note_summary_counters(engine: DIFTEngine) -> None:
    """Fold one engine run's per-run counters into the pending pot."""
    counters = getattr(getattr(engine, "_kernel", None), "counters", None)
    if counters is None:
        return
    for key, value in counters().items():
        if value:
            _summary_pending[key] = _summary_pending.get(key, 0) + value


def drain_summary_metrics() -> dict[str, int]:
    """Hand back (and reset) the accumulated summary counter deltas.

    The pool worker calls this after each job and ships any non-empty
    result to the daemon piggybacked on the response, where it lands in
    the service registry as ``dift.summaries.*`` counters.
    """
    out = {k: v for k, v in _summary_pending.items() if v}
    _summary_pending.clear()
    return out


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------
def _inputs_from(params: dict, default: dict | None = None) -> dict[int, list[int]]:
    raw = params.get("inputs")
    if raw is None:
        return {int(k): list(v) for k, v in (default or {}).items()}
    if not isinstance(raw, dict):
        raise ProtocolError("'params.inputs' must map channel -> value list")
    return {int(k): [int(v) for v in vs] for k, vs in raw.items()}


def _resolve_program(spec_kind: str, payload: dict):
    """(compiled, source_text, inputs) for one worker-form payload."""
    params = payload.get("params") or {}
    if payload.get("source") is not None:
        source = payload["source"]
        compiled = compile_source(source)
        return compiled, source, _inputs_from(params)
    workload = WORKLOAD_FACTORIES[payload["workload"]](payload.get("scale", 1))
    return workload.compiled, None, _inputs_from(params, workload.inputs)


def _run_summary(result, machine) -> dict:
    return {
        "status": result.status.value,
        "failure": str(result.failure) if result.failure else None,
        "instructions": result.instructions,
        "total_cycles": result.cycles.total,
        "outputs": {
            str(ch): list(machine.io.output(ch)) for ch in sorted(machine.io.outputs)
        },
    }


def _execute_log(payload: dict, telemetry=None) -> dict:
    compiled, _, inputs = _resolve_program(payload["kind"], payload)
    runner = ProgramRunner(compiled.program, inputs=inputs, telemetry=telemetry)
    machine, result = runner.run()
    return {"run": _run_summary(result, machine)}


def _execute_dift_stats(payload: dict, telemetry=None) -> dict:
    """DIFT-only middle rung for ``trace``: taint stats, no trace store."""
    compiled, _, inputs = _resolve_program(payload["kind"], payload)
    runner = ProgramRunner(compiled.program, inputs=inputs, telemetry=telemetry)
    machine = runner.machine()
    # Propagation kernel selection (REPRO_FASTPATH_KERNEL=reference|array,
    # default array when numpy is importable) is inherited from the
    # engine here and in _execute_attack: pool workers run untraced
    # machines, so the engine's inline micro-batching engages and every
    # service job rides the vectorized kernel with no wiring of its own.
    policy = BoolTaintPolicy()
    engine = DIFTEngine(
        policy,
        sinks=[],
        summary_cache=_summary_cache_for(payload, policy, []),
    ).attach(machine)
    result = machine.run(max_instructions=runner.max_instructions)
    _note_summary_counters(engine)
    return {
        "run": _run_summary(result, machine),
        "dift": {
            "instructions": engine.stats.instructions,
            "tainted_instructions": engine.stats.tainted_instructions,
            "taint_rate": engine.stats.taint_rate,
            "tainted_locations": engine.shadow.tainted_cells + engine.shadow.tainted_regs,
        },
    }


def _lake_pending(payload: dict, params: dict, inputs: dict):
    """Reserve a trace-lake run for this job, or None when persistence
    is off.  The run is reserved *before* execution so the tracer
    spills while it runs — a worker killed mid-job leaves an
    incomplete run with a recoverable trace prefix (the crash
    postmortem story), not nothing.
    """
    explicit = params.get("lake")
    if not fastpath.service_lake_enabled(
        None if explicit is None else bool(explicit)
    ):
        return None
    if not fastpath.resolve(None, "packed_store"):
        return None  # spilling rides the packed columnar store
    from ..lake import TraceLake
    from ..lake import input_hash as _lake_input_hash

    try:
        lake = TraceLake(params.get("lake_root"))
        return lake.begin_run(
            program=_payload_program_key(payload).replace(":", "-"),
            input_hash=_lake_input_hash(inputs),
            seed=int(params.get("seed", 0)),
            fidelity=payload.get("kind", "trace"),
        )
    except OSError:
        return None  # persistence is best-effort; the job still runs


def _lake_finish(pending, tracer, compiled, telemetry) -> str | None:
    registry = (
        telemetry.registry
        if telemetry is not None and getattr(telemetry, "enabled", False)
        else None
    )
    try:
        return pending.finish(tracer=tracer, compiled=compiled, registry=registry)
    except OSError:
        return None


def _execute_trace(payload: dict, telemetry=None) -> dict:
    compiled, _, inputs = _resolve_program("trace", payload)
    params = payload.get("params") or {}
    runner = ProgramRunner(compiled.program, inputs=inputs, telemetry=telemetry)
    pending = _lake_pending(payload, params, inputs)
    config = OntracConfig(
        buffer_bytes=int(params.get("buffer", 1 << 22)),
        spill_path=pending.spill_path if pending is not None else None,
    )
    machine, tracer, result = runner.run_traced(config)
    lake_run = (
        _lake_finish(pending, tracer, compiled, telemetry)
        if pending is not None else None
    )
    stats = tracer.stats
    out = {
        "run": _run_summary(result, machine),
        "trace": {
            "instructions": stats.instructions,
            "stored_bytes": stats.stored_bytes,
            "bytes_per_instruction": stats.bytes_per_instruction,
            "window_instructions": tracer.buffer.window_instructions(),
            "ddg": tracer.dependence_graph().stats(),
        },
    }
    if lake_run is not None:
        out["lake_run"] = lake_run
    return out


#: swallow-everything emitter: the blocking paths are the streaming
#: paths with the partial frames dropped, so bit-identity of streamed
#: vs blocking results is structural, not hoped-for.
def _no_emit(op: dict) -> None:
    return None


def _stream_chunk() -> int:
    from .. import fastpath

    return fastpath.stream_chunk_rows()


def _emit_chunks(emit, path: str, items: list) -> None:
    """Append ``items`` at dotted ``path`` in bounded row chunks."""
    chunk = _stream_chunk()
    for i in range(0, len(items), chunk):
        emit({"append": {path: items[i : i + chunk]}})


def _execute_slice(payload: dict, telemetry=None, emit=_no_emit) -> dict:
    compiled, _, inputs = _resolve_program("slice", payload)
    params = payload.get("params") or {}
    runner = ProgramRunner(compiled.program, inputs=inputs, telemetry=telemetry)
    pending = _lake_pending(payload, params, inputs)
    config = OntracConfig(
        buffer_bytes=int(params.get("buffer", 1 << 22)),
        spill_path=pending.spill_path if pending is not None else None,
    )
    _, tracer, result = runner.run_traced(config)
    lake_run = (
        _lake_finish(pending, tracer, compiled, telemetry)
        if pending is not None else None
    )
    run_section = {"status": result.status.value, "instructions": result.instructions}
    emit({"set": {"run": run_section}})
    ddg = tracer.dependence_graph()
    line = params.get("line")
    criterion = None
    if line is not None:
        pcs = compiled.pcs_of_line(int(line))
        if not pcs:
            raise ProtocolError(f"no code generated for line {line}")
        for pc in sorted(pcs, reverse=True):
            criterion = ddg.last_instance_of_pc(pc)
            if criterion is not None:
                break
        if criterion is None:
            raise ProtocolError(f"line {line} never executed in the window")
    else:
        # default criterion: the last dynamic instance in the window.
        seqs = [s for s, _ in ddg.node_items()]
        if not seqs:
            raise ProtocolError("empty trace window: nothing to slice")
        criterion = max(seqs)
    sl = backward_slice(ddg, criterion)
    pcs = sorted(sl.pcs)
    lines = sorted(sl.statement_lines(compiled))
    emit({"set": {
        "slice.criterion_seq": criterion,
        "slice.instances": len(sl.seqs),
        "slice.truncated": sl.truncated,
        "slice.pcs": [],
        "slice.lines": [],
    }})
    # The slice body streams as bounded row chunks — the service's
    # long-tail payload (thousands of pcs/lines on big windows) reaches
    # the client incrementally instead of as one terminal blob.
    _emit_chunks(emit, "slice.pcs", pcs)
    _emit_chunks(emit, "slice.lines", lines)
    # Repeated criteria over one window are the service's hot query
    # pattern; queries here run per-job, while *cross*-job reuse is the
    # server-side result cache's business.
    out = {
        "run": run_section,
        "slice": {
            "criterion_seq": criterion,
            "instances": len(sl.seqs),
            "pcs": pcs,
            "lines": lines,
            "truncated": sl.truncated,
        },
    }
    if lake_run is not None:
        out["lake_run"] = lake_run
    return out


def _execute_attack(payload: dict, fidelity: str, telemetry=None, emit=_no_emit) -> dict:
    compiled, source, inputs = _resolve_program("attack", payload)
    params = payload.get("params") or {}
    runner = ProgramRunner(compiled.program, inputs=inputs, telemetry=telemetry)
    machine = runner.machine()
    # full = PC taint (detects *and* names the root cause); the dift
    # rung is boolean taint — detection without explanation (E11).
    policy = PCTaintPolicy() if fidelity == FIDELITY_FULL else BoolTaintPolicy()
    sinks = [SinkRule(kind="icall")]
    if params.get("out_sink"):
        sinks.append(SinkRule(kind="out", channels=None))
    engine = DIFTEngine(
        policy,
        sinks=sinks,
        summary_cache=_summary_cache_for(payload, policy, sinks),
    ).attach(machine)
    result = machine.run(max_instructions=runner.max_instructions)
    _note_summary_counters(engine)
    run_section = _run_summary(result, machine)
    policy_name = "pc" if fidelity == FIDELITY_FULL else "bool"
    emit({"set": {"run": run_section,
                  "attack.policy": policy_name, "attack.alerts": []}})
    alerts = []
    for alert in engine.alerts:
        entry = {"seq": alert.seq, "pc": alert.pc, "message": str(alert)}
        if fidelity == FIDELITY_FULL:
            line = compiled.line_of(alert.label) if isinstance(alert.label, int) else 0
            entry["root_cause_line"] = line
        alerts.append(entry)
        # One frame per verdict: a monitoring client reacts to the first
        # alert while the rest of the report is still being assembled.
        emit({"append": {"attack.alerts": [entry]}})
    emit({"set": {"attack.detected": bool(alerts)}})
    return {
        "run": run_section,
        "attack": {
            "policy": policy_name,
            "detected": bool(alerts),
            "alerts": alerts,
        },
    }


def _execute_lineage(payload: dict, telemetry=None, emit=_no_emit) -> dict:
    from ..apps.lineage import LineageTracer

    compiled, _, inputs = _resolve_program("lineage", payload)
    params = payload.get("params") or {}
    runner = ProgramRunner(compiled.program, inputs=inputs, telemetry=telemetry)
    tracer = LineageTracer(representation=params.get("representation", "robdd"))
    trace = tracer.trace(runner, output_channel=int(params.get("channel", 1)))
    run_section = {
        "status": trace.result.status.value,
        "instructions": trace.result.instructions,
    }
    emit({"set": {"run": run_section,
                  "lineage.representation": trace.store_name,
                  "lineage.outputs": []}})
    outputs = []
    for o in trace.outputs:
        entry = {
            "position": o.position,
            "channel": o.channel,
            "value": o.value,
            "inputs": sorted(o.inputs),
        }
        outputs.append(entry)
        emit({"append": {"lineage.outputs": [entry]}})
    emit({"set": {"lineage.union_cycles": trace.union_cycles}})
    return {
        "run": run_section,
        "lineage": {
            "representation": trace.store_name,
            "outputs": outputs,
            "union_cycles": trace.union_cycles,
        },
    }


def _execute_chaos(payload: dict) -> dict:
    """Deterministic worker misbehavior for the crash-recovery tests."""
    params = payload.get("params") or {}
    mode = params.get("mode", "exit")
    if mode == "exit":
        os._exit(17)
    if mode == "exit-once":
        # Crash on the first attempt only: the flag file records that
        # this spec already died once, so the retried attempt succeeds.
        flag = params["flag"]
        if not os.path.exists(flag):
            with open(flag, "w") as fh:
                fh.write("crashed\n")
            os._exit(17)
        return {"chaos": {"mode": mode, "survived_retry": True}}
    if mode == "hang":
        import time

        time.sleep(float(params.get("sleep_s", 3600.0)))
        return {"chaos": {"mode": mode}}
    raise ProtocolError(f"unknown chaos mode {mode!r}")


def _emit_sections(emit, body: dict) -> None:
    """Stream a body's top-level sections as one set op apiece."""
    if emit is _no_emit:
        return
    for section, value in body.items():
        emit({"set": {section: value}})


def _execute(payload: dict, telemetry, emit) -> dict:
    kind = payload["kind"]
    fidelity = payload.get("fidelity", FIDELITY_FULL)
    emit({"set": {"kind": kind, "fidelity": fidelity}})
    if kind == CHAOS_KIND:
        body = _execute_chaos(payload)
        _emit_sections(emit, body)
    elif fidelity == FIDELITY_LOG:
        body = _execute_log(payload, telemetry)
        _emit_sections(emit, body)
    elif kind == "trace":
        body = (
            _execute_dift_stats(payload, telemetry)
            if fidelity == FIDELITY_DIFT
            else _execute_trace(payload, telemetry)
        )
        _emit_sections(emit, body)
    elif kind == "slice":
        body = _execute_slice(payload, telemetry, emit)
    elif kind == "attack":
        body = _execute_attack(payload, fidelity, telemetry, emit)
    elif kind == "lineage":
        body = _execute_lineage(payload, telemetry, emit)
    else:  # pragma: no cover - resolve_spec guards this
        raise ProtocolError(f"unknown job kind {kind!r}")
    return {"kind": kind, "fidelity": fidelity, **body}


def execute_job(payload: dict, telemetry=None) -> dict:
    """Run one worker-form job payload to completion (pure, in-process).

    Returns the JSON-safe result envelope.  Raises
    :class:`ProtocolError` for spec-level problems and lets
    :class:`~repro.lang.CompileError` escape as itself (the pool turns
    both into clean ``error`` responses).  ``telemetry`` threads an
    optional :class:`~repro.telemetry.Telemetry` bundle into the engine
    (the traced-execution path uses its span tracer); it never changes
    the result payload, so cached results stay bit-identical.
    """
    return _execute(payload, telemetry, _no_emit)


def execute_job_stream(payload: dict, emit, telemetry=None) -> dict:
    """Run one job, emitting partial-result ops as stages complete.

    ``emit`` receives :func:`repro.service.protocol.apply_stream_op`
    ops — section sets as each execution stage lands, then row chunks
    (slice pcs/lines) or per-item frames (attack alerts, lineage
    outputs) for the long-tail payloads.  Returns the same result
    envelope :func:`execute_job` does; the blocking path *is* this path
    with the emits dropped, so reassembling every emitted op yields the
    returned envelope exactly (``tests/test_aserver.py`` proves it per
    job kind).
    """
    return _execute(payload, telemetry, emit)


#: engine (cycle-clock) spans shipped per traced job, at most.
MAX_ENGINE_SPANS = 512


def execute_job_traced(payload: dict, trace_id: str) -> dict:
    """Run one job with span capture; result gains a ``"_spans"`` list.

    The worker's own interval (``worker.execute``) is stamped in wall
    epoch microseconds so it nests inside the server's spans; the
    engine's deterministic cycle-clock spans are re-based at the worker
    span's start (1 modeled cycle = 1 µs, marked ``clock:
    "modeled-cycles"`` so a reader never confuses the two timelines).
    The pool strips ``"_spans"`` before caching, so the cached result
    stays bit-identical to an untraced run's.
    """
    from ..telemetry import NULL_REGISTRY, SpanTracer, Telemetry
    from ..telemetry.obs import span_event, wall_now_us

    tracer = SpanTracer(enabled=True)
    telemetry = Telemetry(registry=NULL_REGISTRY, tracer=tracer)
    t0 = wall_now_us()
    result = execute_job(payload, telemetry=telemetry)
    dur = wall_now_us() - t0
    pid = os.getpid()
    events = [
        span_event(
            "worker.execute", t0, dur, pid=pid, tid=0,
            trace_id=trace_id, kind=payload.get("kind"),
            fidelity=payload.get("fidelity"),
        )
    ]
    for s in list(tracer.events)[:MAX_ENGINE_SPANS]:
        events.append(
            span_event(
                s.name, t0 + s.ts, s.dur, pid=pid, tid=s.tid + 1, cat=s.cat,
                trace_id=trace_id, clock="modeled-cycles",
            )
        )
    result["_spans"] = events
    return result


__all__ = [
    "CHAOS_KIND",
    "FIDELITY_DIFT",
    "FIDELITY_FULL",
    "FIDELITY_LADDER",
    "FIDELITY_LOG",
    "JOB_KINDS",
    "JobSpec",
    "WORKLOAD_FACTORIES",
    "MAX_ENGINE_SPANS",
    "cache_key",
    "drain_summary_metrics",
    "execute_job",
    "execute_job_stream",
    "execute_job_traced",
    "program_key",
    "resolve_spec",
]
