"""Data-race detection via multithreaded dynamic slicing (§3.1, [8,10]).

The paper extends the DIFT/slicing infrastructure: ONTRAC records
cross-thread RAW/WAR/WAW dependences, and a dependence whose two
endpoints are not ordered by synchronization is a race candidate.  The
detector therefore needs the dependence graph *and* the synchronization
history:

* **lock discipline** — both accesses made while holding a common lock
  are synchronized;
* **happens-before edges** — spawn (parent's prefix precedes the whole
  child), thread exit + join (the whole child precedes the joiner's
  suffix), and barrier generations (everything before a barrier trip
  precedes everything after it) order accesses;
* **dynamically recognized user synchronization** (the [10]
  contribution, in :mod:`repro.races.sync_aware`) — flag-style spin
  loops create ordering too, and the races *on the flag cells
  themselves* are benign synchronization races that other tools report
  and this filter removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ontrac.ddg import DynamicDependenceGraph
from ..reduction.logging import EventLog, SyncEvent
from ..slicing.multithreaded import CrossThreadDependence, cross_thread_dependences


@dataclass(frozen=True)
class RaceReport:
    """One reported (or filtered) race candidate."""

    dependence: CrossThreadDependence
    #: why it was filtered ("" = reported as a real race).
    filtered: str = ""

    @property
    def is_reported(self) -> bool:
        return not self.filtered


@dataclass
class SyncHistory:
    """Synchronization facts extracted from an event log."""

    #: tid -> list of (lock id, acquire seq, release seq).
    lock_regions: dict[int, list[tuple[int, int, int]]] = field(default_factory=dict)
    #: barrier trip points: ascending seqs at which some barrier released.
    barrier_trips: list[int] = field(default_factory=list)
    #: child tid -> spawn seq (in the parent).
    spawns: dict[int, int] = field(default_factory=dict)
    #: tid -> exit seq.
    exits: dict[int, int] = field(default_factory=dict)
    #: completed joins: (joiner tid, target tid, seq).
    joins: list[tuple[int, int, int]] = field(default_factory=list)

    @classmethod
    def from_event_log(cls, log: EventLog) -> "SyncHistory":
        history = cls()
        open_locks: dict[tuple[int, int], int] = {}
        barrier_seen: dict[int, list[int]] = {}
        for e in log.syncs:
            if e.kind == "lock":
                open_locks[(e.tid, e.obj)] = e.seq
            elif e.kind == "unlock":
                acq = open_locks.pop((e.tid, e.obj), None)
                if acq is not None:
                    history.lock_regions.setdefault(e.tid, []).append((e.obj, acq, e.seq))
            elif e.kind == "barrier":
                barrier_seen.setdefault(e.obj, []).append(e.seq)
            elif e.kind == "spawn":
                history.spawns[e.obj] = e.seq
            elif e.kind == "join-exit":
                history.exits[e.tid] = e.seq
            elif e.kind == "join":
                history.joins.append((e.tid, e.obj, e.seq))
        # A barrier "trip" is a cluster of release events; use the max seq
        # of each consecutive release burst as the ordering point.
        for releases in barrier_seen.values():
            releases.sort()
            history.barrier_trips.extend(releases)
        # Locks still held at the end protect to infinity.
        for (tid, lock_id), acq in open_locks.items():
            history.lock_regions.setdefault(tid, []).append((lock_id, acq, 1 << 60))
        history.barrier_trips.sort()
        return history

    # -- queries ---------------------------------------------------------
    def locks_held(self, tid: int, seq: int) -> set[int]:
        return {
            lock_id
            for lock_id, acq, rel in self.lock_regions.get(tid, [])
            if acq <= seq < rel
        }

    def ordered_by_sync(self, first_seq: int, second_seq: int, first_tid: int,
                        second_tid: int) -> str:
        """Non-empty reason string when the two accesses are ordered by
        spawn/join/barrier happens-before (``first_seq < second_seq``)."""
        # Barrier trip between them orders them.
        for trip in self.barrier_trips:
            if first_seq <= trip <= second_seq:
                return f"barrier trip at seq {trip}"
        # Spawn: parent's access precedes the child's existence.
        spawn = self.spawns.get(second_tid)
        if spawn is not None and first_seq <= spawn and first_tid != second_tid:
            return f"spawn of t{second_tid} at seq {spawn}"
        # Join: the consumer joined the producer thread before its access
        # (mere exit of the producer does not order anything).
        for joiner, target, seq in self.joins:
            if joiner == second_tid and target == first_tid and seq <= second_seq:
                return f"t{second_tid} joined t{first_tid} at seq {seq}"
        return ""


class RaceDetector:
    """Baseline detector: cross-thread dependences minus lock-protected
    and HB-ordered pairs.  (The sync-aware filter in
    :mod:`repro.races.sync_aware` refines this further.)"""

    def __init__(self, ddg: DynamicDependenceGraph, history: SyncHistory):
        self.ddg = ddg
        self.history = history
        #: cross-thread dependences examined by the last detect() call.
        self.checked = 0

    def detect(self) -> list[RaceReport]:
        reports: list[RaceReport] = []
        self.checked = 0
        for dep in cross_thread_dependences(self.ddg):
            self.checked += 1
            first_seq, first_tid = dep.producer_seq, dep.producer_tid
            second_seq, second_tid = dep.consumer_seq, dep.consumer_tid
            if first_seq > second_seq:
                first_seq, first_tid, second_seq, second_tid = (
                    second_seq,
                    second_tid,
                    first_seq,
                    first_tid,
                )
            common = self.history.locks_held(first_tid, first_seq) & self.history.locks_held(
                second_tid, second_seq
            )
            if common:
                reports.append(
                    RaceReport(dep, filtered=f"common lock {sorted(common)[0]}")
                )
                continue
            reason = self.history.ordered_by_sync(
                first_seq, second_seq, first_tid, second_tid
            )
            if reason:
                reports.append(RaceReport(dep, filtered=reason))
                continue
            reports.append(RaceReport(dep))
        return reports

    def races(self) -> list[RaceReport]:
        return [r for r in self.detect() if r.is_reported]
