"""Data-race detection over multithreaded dynamic slices, with
synchronization-aware filtering (§3.1, [8,10])."""

from .detector import RaceDetector, RaceReport, SyncHistory
from .sync_aware import FlagSync, SyncAwareRaceDetector, SyncAwareResult, SyncRecognizer

__all__ = [
    "RaceDetector",
    "RaceReport",
    "SyncHistory",
    "FlagSync",
    "SyncAwareRaceDetector",
    "SyncAwareResult",
    "SyncRecognizer",
]
