"""Dynamic recognition of user-defined synchronization for race
filtering (§3.1, citing [10] "Dynamic Recognition of Synchronizations
for Data Race Detection").

Lock-based detectors drown the user in *benign synchronization races*:
flag-style user synchronization (one thread spins reading a cell until
another writes it) is an intentional data race.  [10] recognizes these
patterns dynamically and (a) removes the flag accesses themselves from
the report, and (b) uses the discovered ordering (flag set happens
before the spin exit) as a happens-before edge that filters *further*
false races on the data the flag protects.

Recognition here follows the classic shape: a thread issues ``>= K``
consecutive loads of the same address at the same pc yielding the same
value, and the spin exits right after another thread's store changed
the value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..vm.events import Hook, InstrEvent
from .detector import RaceDetector, RaceReport, SyncHistory


@dataclass(frozen=True)
class FlagSync:
    """One recognized flag synchronization."""

    addr: int
    setter_tid: int
    set_seq: int  # the store that released the spin
    waiter_tid: int
    exit_seq: int  # the read that observed the new value
    spins: int


class SyncRecognizer(Hook):
    """Observes execution and recognizes flag-spin synchronizations."""

    def __init__(self, spin_threshold: int = 5):
        self.spin_threshold = spin_threshold
        self.flag_syncs: list[FlagSync] = []
        #: (tid, pc) -> (addr, value, count)
        self._spins: dict[tuple[int, int], tuple[int, int, int]] = {}
        #: addr -> (writer tid, seq) of the last store.
        self._last_store: dict[int, tuple[int, int]] = {}

    def on_instruction(self, ev: InstrEvent) -> None:
        for addr, value in ev.mem_writes:
            self._last_store[addr] = (ev.tid, ev.seq)
        for addr, value in ev.mem_reads:
            key = (ev.tid, ev.pc)
            prev = self._spins.get(key)
            if prev is not None and prev[0] == addr and prev[1] == value:
                self._spins[key] = (addr, value, prev[2] + 1)
                continue
            if (
                prev is not None
                and prev[0] == addr
                and prev[1] != value
                and prev[2] >= self.spin_threshold
            ):
                writer = self._last_store.get(addr)
                if writer is not None and writer[0] != ev.tid:
                    self.flag_syncs.append(
                        FlagSync(
                            addr=addr,
                            setter_tid=writer[0],
                            set_seq=writer[1],
                            waiter_tid=ev.tid,
                            exit_seq=ev.seq,
                            spins=prev[2],
                        )
                    )
            self._spins[key] = (addr, value, 0)


@dataclass
class SyncAwareResult:
    reported: list[RaceReport] = field(default_factory=list)
    filtered_flag_accesses: list[RaceReport] = field(default_factory=list)
    filtered_by_flag_ordering: list[RaceReport] = field(default_factory=list)
    filtered_by_locks_or_hb: list[RaceReport] = field(default_factory=list)

    @property
    def baseline_count(self) -> int:
        """Races a lockset-only detector (no HB, no sync recognition)
        would have reported."""
        return (
            len(self.reported)
            + len(self.filtered_flag_accesses)
            + len(self.filtered_by_flag_ordering)
            + len(self.filtered_by_locks_or_hb)
        )

    def publish_telemetry(self, registry) -> None:
        """Dump check/report/filter metrics into a registry."""
        registry.counter("races.checks").inc(self.baseline_count)
        registry.counter("races.reported").inc(len(self.reported))
        registry.counter("races.filtered.flag_accesses").inc(len(self.filtered_flag_accesses))
        registry.counter("races.filtered.flag_ordering").inc(
            len(self.filtered_by_flag_ordering)
        )
        registry.counter("races.filtered.locks_or_hb").inc(len(self.filtered_by_locks_or_hb))


class SyncAwareRaceDetector:
    """Race detection with dynamic synchronization recognition."""

    def __init__(self, detector: RaceDetector, flag_syncs: list[FlagSync]):
        self.detector = detector
        self.flag_syncs = flag_syncs

    def _flag_addresses(self) -> set[int]:
        return {f.addr for f in self.flag_syncs}

    def _flag_orders(self, first_seq: int, second_seq: int) -> FlagSync | None:
        """A recognized flag sync whose (set -> exit) interval orders the
        two accesses: first before the set, second after the exit."""
        for f in self.flag_syncs:
            if first_seq <= f.set_seq and second_seq >= f.exit_seq:
                return f
        return None

    def detect(self) -> SyncAwareResult:
        result = SyncAwareResult()
        flag_addrs = self._flag_addresses()
        for report in self.detector.detect():
            dep = report.dependence
            if report.filtered:
                result.filtered_by_locks_or_hb.append(report)
                continue
            first = min(dep.producer_seq, dep.consumer_seq)
            second = max(dep.producer_seq, dep.consumer_seq)
            # (a) the race IS the synchronization: benign by construction.
            addr_race_on_flag = any(
                f.addr in flag_addrs
                and {dep.producer_seq, dep.consumer_seq} & {f.set_seq, f.exit_seq}
                for f in self.flag_syncs
            )
            if addr_race_on_flag:
                result.filtered_flag_accesses.append(
                    RaceReport(dep, filtered="benign synchronization race (flag)")
                )
                continue
            # (b) ordered through a recognized flag synchronization.
            order = self._flag_orders(first, second)
            if order is not None:
                result.filtered_by_flag_ordering.append(
                    RaceReport(
                        dep,
                        filtered=f"ordered by flag sync on addr {order.addr}",
                    )
                )
                continue
            result.reported.append(report)
        return result
