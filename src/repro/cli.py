"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE``          — compile & execute a MiniC program
* ``disasm FILE``       — compile and print the mini-ISA disassembly
* ``trace FILE``        — execute under ONTRAC; print tracing statistics
* ``slice FILE --line N`` — trace, then backward-slice the last dynamic
  instance of source line N; print the slice as source lines
* ``attack FILE``       — execute under the DIFT attack monitor
* ``experiments [IDS]`` — run paper experiments (default: all of E1..E12)
* ``serve``             — run the analysis service daemon (``--async``
  for the event-loop front door with streamed partial results)
* ``route``             — run the consistent-hash router over N daemons
* ``submit KIND``       — submit one job (or stats/health/shutdown, or
  the router's drain/undrain) to a running daemon/router and print the
  JSON response (``--stream`` for incremental partial frames)
* ``stats``             — scrape a running daemon's live metrics
  (Prometheus text by default, ``--json`` for the snapshot series,
  ``--dump`` to force a flight-recorder artifact)
* ``lake ls|info|slice|diff|gc`` — query the persistent trace lake:
  list stored runs, postmortem one run, slice it without re-executing,
  diff a failing run's dependence edges against passing runs, and
  apply retention/compaction (``trace --lake`` records runs)

Inputs are passed as ``--input CH=V1,V2,...`` (repeatable).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .dift.engine import DIFTEngine, SinkRule
from .dift.policy import BoolTaintPolicy, PCTaintPolicy
from .lang import CompileError, compile_source
from .ontrac import OnlineTracer, OntracConfig, PackedDDG
from .runner import ProgramRunner
from .slicing import backward_slice
from .telemetry import NULL_TELEMETRY, Telemetry, build_report
from .vm import Machine


def _telemetry(args) -> Telemetry:
    """Enabled telemetry iff the user asked for a report or a trace."""
    if getattr(args, "report", None) or getattr(args, "trace", None):
        return Telemetry.on()
    return NULL_TELEMETRY


def _write_outputs(args, telemetry: Telemetry, tool: str, result, extra: dict | None = None) -> None:
    """Write --report / --trace files for one finished run."""
    if getattr(args, "report", None):
        report = build_report(tool, result, telemetry.registry, extra=extra)
        report.write(args.report)
        print(f"report written to {args.report}", file=sys.stderr)
    if getattr(args, "trace", None):
        telemetry.tracer.write(args.trace)
        print(f"chrome trace written to {args.trace} (open in Perfetto)", file=sys.stderr)


def _parse_inputs(pairs: list[str]) -> dict[int, list[int]]:
    inputs: dict[int, list[int]] = {}
    for pair in pairs or []:
        channel_text, _, values_text = pair.partition("=")
        channel = int(channel_text)
        values = [int(v) for v in values_text.split(",") if v != ""]
        inputs.setdefault(channel, []).extend(values)
    return inputs


def _load(path: str):
    source = Path(path).read_text()
    return compile_source(source), source


def cmd_run(args) -> int:
    compiled, _ = _load(args.file)
    telemetry = _telemetry(args)
    machine = Machine(compiled.program, telemetry=telemetry)
    for channel, values in _parse_inputs(args.input).items():
        machine.io.provide(channel, values)
    result = machine.run(max_instructions=args.max_instructions)
    print(f"status: {result.status.value}")
    if result.failure:
        print(f"failure: {result.failure}")
    print(f"instructions: {result.instructions}")
    print(f"cycles: {result.cycles.total}")
    for channel in sorted(machine.io.outputs):
        print(f"out[{channel}]: {machine.io.output(channel)}")
    _write_outputs(args, telemetry, "run", result)
    return 1 if result.failed else 0


def cmd_disasm(args) -> int:
    compiled, _ = _load(args.file)
    sys.stdout.write(compiled.program.disassemble())
    return 0


def cmd_trace(args) -> int:
    compiled, source = _load(args.file)
    telemetry = _telemetry(args)
    inputs = _parse_inputs(args.input)
    runner = ProgramRunner(
        compiled.program,
        inputs=inputs,
        max_instructions=args.max_instructions,
        telemetry=telemetry,
    )
    config = (
        OntracConfig.unoptimized(buffer_bytes=args.buffer)
        if args.naive
        else OntracConfig(buffer_bytes=args.buffer)
    )
    pending = None
    if args.lake:
        from .lake import TraceLake, input_hash, program_hash

        lake = TraceLake(args.lake_root)
        pending = lake.begin_run(
            program=program_hash(source),
            input_hash=input_hash(inputs),
            seed=args.seed,
        )
        config.spill_path = pending.spill_path
    machine, tracer, result = runner.run_traced(config)
    if pending is not None:
        run_id = pending.finish(
            tracer=tracer,
            compiled=compiled,
            registry=telemetry.registry if telemetry.enabled else None,
        )
        print(f"lake run: {run_id}")
    stats = tracer.stats
    print(f"status: {result.status.value}")
    print(f"instructions: {stats.instructions}")
    print(f"stored bytes: {stats.stored_bytes} ({stats.bytes_per_instruction:.2f} B/instr)")
    print(f"slowdown (cycle model): {result.cycles.slowdown:.1f}x")
    print(f"history window: {tracer.buffer.window_instructions()} instructions")
    if stats.skipped:
        print("optimization hits:")
        for reason, count in sorted(stats.skipped.items()):
            print(f"  {reason}: {count}")
    ddg_stats = tracer.dependence_graph().stats()
    print(f"DDG: {ddg_stats}")
    _write_outputs(
        args, telemetry, "trace",
        result, extra={"bytes_per_instruction": stats.bytes_per_instruction},
    )
    return 0


def cmd_slice(args) -> int:
    compiled, source = _load(args.file)
    telemetry = _telemetry(args)
    runner = ProgramRunner(
        compiled.program,
        inputs=_parse_inputs(args.input),
        max_instructions=args.max_instructions,
        telemetry=telemetry,
    )
    _, tracer, result = runner.run_traced(OntracConfig(buffer_bytes=args.buffer))
    ddg = tracer.dependence_graph()
    pcs = compiled.pcs_of_line(args.line)
    if not pcs:
        print(f"error: no code generated for line {args.line}", file=sys.stderr)
        return 2
    criterion = None
    for pc in sorted(pcs, reverse=True):
        criterion = ddg.last_instance_of_pc(pc)
        if criterion is not None:
            break
    if criterion is None:
        print(f"error: line {args.line} never executed in the window", file=sys.stderr)
        return 2
    sl = backward_slice(ddg, criterion)
    if isinstance(ddg, PackedDDG):
        # Surface the indexed engine's query counters (slicing.queries,
        # memo hits, rows scanned) in --report.
        ddg.publish_telemetry(telemetry.registry)
    lines = sorted(sl.statement_lines(compiled))
    print(f"criterion: line {args.line} (dynamic instance seq {criterion})")
    print(f"slice: {len(sl.seqs)} dynamic instances, {len(lines)} source lines"
          + (" [TRUNCATED at window edge]" if sl.truncated else ""))
    source_lines = source.splitlines()
    for line in lines:
        text = source_lines[line - 1].strip() if line <= len(source_lines) else "?"
        print(f"  line {line:3d}: {text}")
    _write_outputs(
        args, telemetry, "slice", result,
        extra={
            "criterion_line": args.line,
            "criterion_seq": criterion,
            "slice_instances": len(sl.seqs),
            "slice_lines": lines,
            "truncated": sl.truncated,
        },
    )
    return 0


def cmd_attack(args) -> int:
    compiled, source = _load(args.file)
    telemetry = _telemetry(args)
    machine = Machine(compiled.program, telemetry=telemetry)
    for channel, values in _parse_inputs(args.input).items():
        machine.io.provide(channel, values)
    policy = PCTaintPolicy() if args.policy == "pc" else BoolTaintPolicy()
    sinks = [SinkRule(kind="icall"), SinkRule(kind="out", channels=None)] \
        if args.out_sink else [SinkRule(kind="icall")]
    if args.parallel_helper:
        from .multicore.parallel import ParallelHelperDIFT

        engine = ParallelHelperDIFT(
            policy, sinks=sinks, batch_size=args.batch_size
        ).attach(machine)
    else:
        engine = DIFTEngine(policy, sinks=sinks).attach(machine)
    result = machine.run(max_instructions=args.max_instructions)
    if args.parallel_helper:
        # Detection is asynchronous on the worker: the guest has already
        # finished by the time the helper's verdict lands (the paper's
        # helper-core lag), but alerts and taint are the inline engine's.
        report = engine.finish()
        if report.attack is not None:
            print(f"helper core flagged the run: {report.attack}", file=sys.stderr)
    if telemetry.enabled:
        engine.publish_telemetry(telemetry.registry)
    _write_outputs(
        args, telemetry, "attack", result,
        extra={"policy": args.policy, "alerts": len(engine.alerts)},
    )
    if engine.alerts:
        alert = engine.alerts[0]
        print(f"ATTACK DETECTED: {alert}")
        if args.policy == "pc":
            line = compiled.line_of(alert.label)
            source_lines = source.splitlines()
            text = source_lines[line - 1].strip() if 0 < line <= len(source_lines) else "?"
            print(f"root cause: line {line}: {text}")
        return 1
    print(f"clean: {result.status.value}, output {machine.io.output(1)}")
    return 0


def cmd_experiments(args) -> int:
    import json

    from .harness import ALL_EXPERIMENTS, EXTRA_EXPERIMENTS, run_all

    names = args.ids or sorted(ALL_EXPERIMENTS, key=lambda n: int(n[1:]))
    for name in names:
        if name not in ALL_EXPERIMENTS and name not in EXTRA_EXPERIMENTS:
            print(f"error: unknown experiment {name}", file=sys.stderr)
            return 2
    results = run_all(names, workers=args.workers, timeout_s=args.timeout)
    for result in results:
        print(result.table())
        if result.notes:
            print(f"notes: {result.notes}")
        print(f"wall-clock: {result.wall_time_s:.2f} s")
        print()
    if getattr(args, "report", None):
        payload = [
            {
                "experiment": r.experiment,
                "claim": r.claim,
                "headline": r.headline,
                "metrics": r.metrics,
                "wall_time_s": r.wall_time_s,
            }
            for r in results
        ]
        with open(args.report, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.report}", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    from .service import ServiceConfig, make_server

    if (args.socket is None) == (args.port is None):
        print("error: serve needs exactly one of --socket or --port", file=sys.stderr)
        return 2
    config = ServiceConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        default_deadline_s=args.deadline,
        cache_entries=args.cache_entries,
        degrade=False if args.no_degrade else None,
        allow_chaos=args.allow_chaos,
        observe=False if args.no_observe else None,
        obs_dir=args.obs_dir,
        sample_interval_s=args.sample_interval,
    )
    # --async / --sync win; neither defers to REPRO_SERVICE_ASYNC.
    use_async = True if args.use_async else (False if args.sync else None)
    server = make_server(config, use_async=use_async)
    server.start()
    flavor = "async" if type(server).__name__ == "AsyncAnalysisServer" else "threaded"
    # Printed after bind so an ephemeral --port 0 shows the real port.
    print(f"serving on {config.address()} "
          f"({flavor}, workers={config.workers}, capacity={config.queue_capacity})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print("service stopped", flush=True)
    return 0


def cmd_route(args) -> int:
    from .service import RouterConfig, RouterServer

    if (args.socket is None) == (args.port is None):
        print("error: route needs exactly one of --socket or --port", file=sys.stderr)
        return 2
    config = RouterConfig(
        backends=list(args.backends),
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        vnodes=args.vnodes,
        health_interval_s=args.health_interval,
        retries=args.retries,
        cache_entries=args.cache_entries,
        default_deadline_s=args.deadline,
        observe=False if args.no_observe else None,
        obs_dir=args.obs_dir,
    )
    router = RouterServer(config)
    router.start()
    print(f"routing on {config.address()} "
          f"({len(config.backends)} backends, vnodes={config.vnodes})",
          flush=True)
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        router.stop()
    print("router stopped", flush=True)
    return 0


def cmd_submit(args) -> int:
    import json

    from .service import STATUS_DEGRADED, STATUS_OK, STATUS_REJECTED, ServiceClient, ServiceError

    params: dict = {}
    if args.params:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as exc:
            print(f"error: --params is not valid JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print("error: --params must be a JSON object", file=sys.stderr)
            return 2
    if args.line is not None:
        params["line"] = args.line
    is_job = args.kind not in ("stats", "health", "shutdown", "drain", "undrain")
    if is_job and args.kind != "chaos" and (args.workload is None) == (args.file is None):
        print("error: submit needs exactly one of --workload or --file", file=sys.stderr)
        return 2
    if args.kind in ("drain", "undrain") and not args.backend:
        print(f"error: {args.kind} needs --backend ADDR", file=sys.stderr)
        return 2
    source = Path(args.file).read_text() if is_job and args.file else None

    try:
        with ServiceClient(args.connect, timeout_s=args.timeout) as client:
            if args.kind in ("stats", "health"):
                response = client.request({"kind": args.kind})
            elif args.kind in ("drain", "undrain"):
                response = client.request(
                    {"kind": args.kind, "backend": args.backend}
                )
            elif args.kind == "shutdown":
                response = client.shutdown()
            elif args.trace:
                response, _ = client.submit_traced(
                    args.kind,
                    trace_path=args.trace,
                    workload=args.workload,
                    scale=args.scale,
                    source=source,
                    fidelity=args.fidelity,
                    params=params or None,
                    cache=not args.no_cache,
                    deadline_s=args.deadline,
                )
                print(f"chrome trace written to {args.trace} (open in Perfetto)",
                      file=sys.stderr)
            elif args.stream:
                def on_partial(seq: int, op: dict) -> None:
                    print(f"partial {seq}: {json.dumps(op, sort_keys=True)}",
                          file=sys.stderr)

                response, ops = client.submit_stream(
                    args.kind,
                    on_partial=on_partial,
                    workload=args.workload,
                    scale=args.scale,
                    source=source,
                    fidelity=args.fidelity,
                    params=params or None,
                    cache=not args.no_cache,
                    deadline_s=args.deadline,
                )
                print(f"streamed {len(ops)} partial frames", file=sys.stderr)
            else:
                response = client.submit(
                    args.kind,
                    workload=args.workload,
                    scale=args.scale,
                    source=source,
                    fidelity=args.fidelity,
                    params=params or None,
                    cache=not args.no_cache,
                    deadline_s=args.deadline,
                )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    json.dump(response, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")
    status = response.get("status")
    if status in (STATUS_OK, STATUS_DEGRADED):
        return 0
    if status == STATUS_REJECTED:
        return 3  # backpressure: distinct from job failure for scripts
    return 1


def cmd_stats(args) -> int:
    import json

    from .service import ServiceClient, ServiceError

    try:
        with ServiceClient(args.connect, timeout_s=args.timeout) as client:
            metrics = client.metrics(dump=args.dump)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(metrics, sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
    else:
        sys.stdout.write(metrics.get("prometheus") or "")
    summary = metrics.get("summary") or {}
    if summary:
        line = " ".join(f"{k}={v}" for k, v in summary.items())
        print(f"summary: {line}", file=sys.stderr)
    if args.dump:
        print(f"flight recorder dumped to {metrics.get('dump_path')}",
              file=sys.stderr)
    return 0


def cmd_lake_ls(args) -> int:
    from .lake import TraceLake

    lake = TraceLake(args.root)
    runs = lake.runs()
    if not runs:
        print(f"lake at {lake.root} is empty")
        return 0
    print(f"{'RUN':50} {'ROWS':>9} {'BYTES':>10} {'ALERTS':>6}  STATUS")
    for info in runs:
        if info.complete:
            trace = info.manifest.get("trace", {})
            rows = str(trace.get("rows", "?"))
            alerts = str(len(info.manifest.get("alerts", [])))
            status = "ok"
        else:
            rows, alerts, status = "?", "?", "incomplete"
        print(f"{info.run_id:50} {rows:>9} {info.bytes:>10} {alerts:>6}  {status}")
    return 0


def cmd_lake_info(args) -> int:
    import json

    from .lake import TraceLake, postmortem

    lake = TraceLake(args.root)
    run_id = lake.resolve(args.run)
    manifest = lake.manifest(run_id)
    with lake.open(run_id) as run:
        report = postmortem(run, manifest)
    report["run"] = run_id
    if manifest is not None:
        for key in ("program", "input_hash", "seed", "fidelity", "policy"):
            if key in manifest:
                report[key] = manifest[key]
    json.dump(report, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def cmd_lake_slice(args) -> int:
    from .lake import TraceLake, resolve_criterion, slice_lines, slice_stored

    lake = TraceLake(args.root)
    run_id = lake.resolve(args.run)
    manifest = lake.manifest(run_id)
    with lake.open(run_id) as run:
        try:
            criterion = resolve_criterion(
                run, seq=args.seq, pc=args.pc, line=args.line, manifest=manifest,
            )
            direction = "forward" if args.forward else "backward"
            sl = slice_stored(run, criterion, direction=direction)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        lines = slice_lines(sl, manifest)
        recovered = run.recovered
    print(f"run: {run_id}" + (" [recovered prefix]" if recovered else ""))
    print(f"criterion: seq {criterion} ({direction})")
    print(f"slice: {len(sl.seqs)} dynamic instances, {len(sl.pcs)} pcs"
          + (" [TRUNCATED at window edge]" if sl.truncated else ""))
    if lines:
        print(f"source lines: {', '.join(str(line) for line in lines)}")
    return 0


def cmd_lake_diff(args) -> int:
    import json

    from .lake import TraceLake, diff_runs, suspect_lines

    lake = TraceLake(args.root)
    result = diff_runs(lake, args.failing, args.passing)
    result["suspect_lines"] = sorted(suspect_lines(result))
    json.dump(result, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def cmd_lake_gc(args) -> int:
    import json

    from .lake import TraceLake

    lake = TraceLake(args.root)
    out: dict = {}
    if args.keep is not None or args.max_bytes is not None:
        out["gc"] = lake.gc(keep_runs=args.keep, max_bytes=args.max_bytes)
    if args.compact is not None:
        out["compact"] = lake.compact(args.compact)
    if not out:
        print("error: gc needs --keep, --max-bytes, or --compact RUN",
              file=sys.stderr)
        return 2
    json.dump(out, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Scalable DIFT and its applications (IPDPS'08 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="MiniC source file")
        p.add_argument("--input", action="append", metavar="CH=V1,V2,...",
                       help="input channel values (repeatable)")
        p.add_argument("--max-instructions", type=int, default=10_000_000)
        p.add_argument("--report", metavar="PATH",
                       help="write a machine-readable run report (JSON) to PATH")
        p.add_argument("--trace", metavar="PATH",
                       help="write a Chrome trace-event JSON (Perfetto) to PATH")

    p_run = sub.add_parser("run", help="compile & execute")
    common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_dis = sub.add_parser("disasm", help="print disassembly")
    p_dis.add_argument("file")
    p_dis.set_defaults(func=cmd_disasm)

    p_trace = sub.add_parser("trace", help="execute under ONTRAC")
    common(p_trace)
    p_trace.add_argument("--naive", action="store_true", help="disable all optimizations")
    p_trace.add_argument("--buffer", type=int, default=1 << 22, help="trace buffer bytes")
    p_trace.add_argument("--lake", action="store_true",
                         help="persist the trace into the lake (sealed chunks "
                              "spill as the run executes; a killed run leaves "
                              "a recoverable prefix)")
    p_trace.add_argument("--lake-root", metavar="DIR", default=None,
                         help="lake root for --lake (default ./lake or "
                              "REPRO_LAKE_DIR)")
    p_trace.add_argument("--seed", type=int, default=0,
                         help="run-key seed recorded with --lake")
    p_trace.set_defaults(func=cmd_trace)

    p_slice = sub.add_parser("slice", help="backward dynamic slice of a source line")
    common(p_slice)
    p_slice.add_argument("--line", type=int, required=True)
    p_slice.add_argument("--buffer", type=int, default=1 << 22)
    p_slice.set_defaults(func=cmd_slice)

    p_attack = sub.add_parser("attack", help="run under the DIFT attack monitor")
    common(p_attack)
    p_attack.add_argument("--policy", choices=("bool", "pc"), default="pc")
    p_attack.add_argument("--out-sink", action="store_true",
                          help="also treat output channels as sinks")
    p_attack.add_argument("--parallel-helper", action="store_true",
                          help="run the DIFT engine in a real worker process "
                               "over the shared-memory ring (asynchronous "
                               "detection, identical alerts/taint)")
    p_attack.add_argument("--batch-size", type=int, default=None,
                          help="ring messages per flush for --parallel-helper "
                               "(default: repro.fastpath resolution; 1 unless "
                               "REPRO_FASTPATH_PARALLEL is set)")
    p_attack.set_defaults(func=cmd_attack)

    p_exp = sub.add_parser("experiments", help="run paper experiments")
    p_exp.add_argument("ids", nargs="*",
                       help="experiment ids (E1..E12, fastpath, slicing, "
                            "parallel, service, lake); "
                            "default E1..E12")
    p_exp.add_argument("--report", metavar="PATH",
                       help="write per-experiment results + metrics (JSON) to PATH")
    p_exp.add_argument("--workers", type=int, default=None,
                       help="fan experiments out over N worker processes "
                            "(results stay in selection order; failures fall "
                            "back to sequential)")
    p_exp.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-experiment timeout in seconds when --workers "
                            "is used")
    p_exp.set_defaults(func=cmd_experiments)

    p_serve = sub.add_parser("serve", help="run the analysis service daemon")
    p_serve.add_argument("--socket", metavar="PATH",
                         help="Unix socket path to listen on")
    p_serve.add_argument("--port", type=int, metavar="N",
                         help="TCP port to listen on (0 = ephemeral)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="analysis worker processes (default 2)")
    p_serve.add_argument("--queue-capacity", type=int, default=8,
                         help="admitted-job ceiling before REJECTED (default 8)")
    p_serve.add_argument("--deadline", type=float, default=120.0, metavar="S",
                         help="default per-job deadline in seconds")
    p_serve.add_argument("--cache-entries", type=int, default=256,
                         help="result cache capacity (jobs)")
    p_serve.add_argument("--no-degrade", action="store_true",
                         help="never shed fidelity under load "
                              "(jobs run full or get REJECTED)")
    p_serve.add_argument("--allow-chaos", action="store_true",
                         help="admit test-only chaos jobs (crash/hang injection)")
    p_serve.add_argument("--no-observe", action="store_true",
                         help="disable observability (tracing, flight "
                              "recorder, metrics sampler)")
    p_serve.add_argument("--obs-dir", metavar="DIR", default=None,
                         help="directory for flight-recorder dump artifacts "
                              "(default: current directory)")
    p_serve.add_argument("--sample-interval", type=float, default=1.0,
                         metavar="S",
                         help="metrics time-series sampling period in "
                              "seconds (default: 1.0)")
    flavor = p_serve.add_mutually_exclusive_group()
    flavor.add_argument("--async", dest="use_async", action="store_true",
                        help="run the asyncio front door (coroutine per "
                             "connection, streamed partial results)")
    flavor.add_argument("--sync", action="store_true",
                        help="force the thread-per-connection daemon even if "
                             "REPRO_SERVICE_ASYNC is set")
    p_serve.set_defaults(func=cmd_serve, use_async=False, sync=False)

    p_route = sub.add_parser(
        "route", help="run the consistent-hash router over N daemons"
    )
    p_route.add_argument("--backends", required=True, nargs="+", metavar="ADDR",
                         help="backend daemon addresses (unix:///path, "
                              "tcp://host:port, host:port, or socket paths)")
    p_route.add_argument("--socket", metavar="PATH",
                         help="Unix socket path to listen on")
    p_route.add_argument("--port", type=int, metavar="N",
                         help="TCP port to listen on (0 = ephemeral)")
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument("--vnodes", type=int, default=64,
                         help="virtual nodes per backend on the hash ring "
                              "(default 64)")
    p_route.add_argument("--health-interval", type=float, default=0.5,
                         metavar="S",
                         help="backend health-probe period (default 0.5s)")
    p_route.add_argument("--retries", type=int, default=1,
                         help="reroute attempts after a backend dies mid-job "
                              "(default 1)")
    p_route.add_argument("--cache-entries", type=int, default=256,
                         help="router-level result cache capacity (jobs)")
    p_route.add_argument("--deadline", type=float, default=120.0, metavar="S",
                         help="default per-job deadline in seconds")
    p_route.add_argument("--no-observe", action="store_true",
                         help="disable the router's flight recorder/sampler")
    p_route.add_argument("--obs-dir", metavar="DIR", default=None,
                         help="directory for flight-recorder dump artifacts")
    p_route.set_defaults(func=cmd_route)

    p_submit = sub.add_parser(
        "submit", help="submit one job to a running analysis service"
    )
    p_submit.add_argument("kind",
                          choices=("trace", "slice", "attack", "lineage",
                                   "chaos", "stats", "health", "shutdown",
                                   "drain", "undrain"),
                          help="job kind, or a control request (drain/undrain "
                               "are router verbs)")
    p_submit.add_argument("--backend", metavar="ADDR", default=None,
                          help="backend address for drain/undrain")
    p_submit.add_argument("--connect", required=True, metavar="ADDR",
                          help="unix:///path, tcp://host:port, or a socket path")
    p_submit.add_argument("--workload", metavar="NAME",
                          help="named workload (matmul, sort, hashloop, rle, bfs, fsm)")
    p_submit.add_argument("--file", metavar="PATH", help="MiniC source file to submit")
    p_submit.add_argument("--scale", type=int, default=1)
    p_submit.add_argument("--fidelity", choices=("full", "dift", "log"), default=None,
                          help="requested fidelity (default full)")
    p_submit.add_argument("--line", type=int, default=None,
                          help="slice criterion source line (slice jobs)")
    p_submit.add_argument("--params", metavar="JSON",
                          help="extra job params as a JSON object")
    p_submit.add_argument("--no-cache", action="store_true",
                          help="bypass the server's result cache")
    p_submit.add_argument("--deadline", type=float, default=None, metavar="S",
                          help="per-job deadline in seconds")
    p_submit.add_argument("--timeout", type=float, default=150.0, metavar="S",
                          help="client-side response timeout")
    p_submit.add_argument("--trace", metavar="PATH",
                          help="trace the job end to end and write the merged "
                               "client+server+worker Chrome trace to PATH")
    p_submit.add_argument("--stream", action="store_true",
                          help="request streamed partial results (prints each "
                               "partial op to stderr as it arrives; the final "
                               "JSON on stdout is unchanged)")
    p_submit.set_defaults(func=cmd_submit)

    p_stats = sub.add_parser(
        "stats", help="scrape a running daemon's live metrics exposition"
    )
    p_stats.add_argument("--connect", required=True, metavar="ADDR",
                         help="unix:///path, tcp://host:port, or a socket path")
    p_stats.add_argument("--json", action="store_true",
                         help="print the JSON snapshot (registry, summary, "
                              "sample series) instead of Prometheus text")
    p_stats.add_argument("--dump", action="store_true",
                         help="also dump the flight recorder to an artifact")
    p_stats.add_argument("--timeout", type=float, default=30.0, metavar="S",
                         help="client-side response timeout")
    p_stats.set_defaults(func=cmd_stats)

    p_lake = sub.add_parser(
        "lake", help="query the persistent trace lake (stored runs)"
    )
    lake_sub = p_lake.add_subparsers(dest="lake_command", required=True)

    def lake_common(p):
        p.add_argument("--root", metavar="DIR", default=None,
                       help="lake root (default ./lake or REPRO_LAKE_DIR)")

    pl_ls = lake_sub.add_parser("ls", help="list stored runs")
    lake_common(pl_ls)
    pl_ls.set_defaults(func=cmd_lake_ls)

    pl_info = lake_sub.add_parser(
        "info", help="manifest + postmortem summary of one run"
    )
    lake_common(pl_info)
    pl_info.add_argument("run", help="run id (unique prefix ok)")
    pl_info.set_defaults(func=cmd_lake_info)

    pl_slice = lake_sub.add_parser(
        "slice", help="re-execution-free dynamic slice of a stored run"
    )
    lake_common(pl_slice)
    pl_slice.add_argument("run", help="run id (unique prefix ok)")
    pl_slice.add_argument("--seq", type=int, default=None,
                          help="criterion dynamic sequence number")
    pl_slice.add_argument("--pc", type=int, default=None,
                          help="criterion: last stored instance of this pc")
    pl_slice.add_argument("--line", type=int, default=None,
                          help="criterion: last stored instance of this "
                               "source line (needs a manifest)")
    pl_slice.add_argument("--forward", action="store_true",
                          help="forward lineage instead of backward slice")
    pl_slice.set_defaults(func=cmd_lake_slice)

    pl_diff = lake_sub.add_parser(
        "diff", help="dependence edges in the failing run but no passing run"
    )
    lake_common(pl_diff)
    pl_diff.add_argument("--failing", required=True, metavar="RUN",
                         help="the failing run (unique prefix ok)")
    pl_diff.add_argument("--passing", required=True, nargs="+", metavar="RUN",
                         help="passing runs to subtract")
    pl_diff.set_defaults(func=cmd_lake_diff)

    pl_gc = lake_sub.add_parser(
        "gc", help="retention: drop oldest runs and/or compact one run"
    )
    lake_common(pl_gc)
    pl_gc.add_argument("--keep", type=int, default=None, metavar="N",
                       help="keep at most N newest runs")
    pl_gc.add_argument("--max-bytes", type=int, default=None, metavar="B",
                       help="drop oldest runs until the lake is under B bytes")
    pl_gc.add_argument("--compact", metavar="RUN", default=None,
                       help="rewrite RUN's spill into dense max-size chunks")
    pl_gc.set_defaults(func=cmd_lake_gc)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CompileError as exc:
        print(f"compile error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Malformed argument values (e.g. --input CH=V with a non-integer)
        # are user errors, not crashes: one line on stderr, exit 2.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
