"""Helper-core DIFT (§2.1, citing [3] "Dynamic Information Flow
Tracking on Multicores").

The application core executes the program; a helper thread pinned to a
second core performs all taint bookkeeping.  The main core's only DIFT
cost is *enqueueing* a compact message per instruction (plus stalls
when the helper falls behind); the helper pays dequeue + propagation.

Functionally the helper runs the exact same :class:`repro.dift.DIFTEngine`
(attacks are still detected — the detection just happens on the helper,
which is how the paper tolerates the extra PC-taint memory overhead
"gracefully"); the timing model splits the costs across the two
timelines and reports the end-to-end overhead the paper measured at
~48% for SPEC integer programs with hardware-interconnect
communication.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dift.engine import DIFTEngine, SinkRule
from ..dift.policy import TaintPolicy
from ..vm.events import Hook, InstrEvent
from ..vm.machine import Machine
from .channel import ChannelModel, QueueSimulator, hardware_interconnect


@dataclass
class HelperReport:
    """Timing outcome of one helper-core DIFT run."""

    base_cycles: int  # uninstrumented guest cycles
    main_cycles: int  # main core: base + enqueue + stalls
    helper_busy_cycles: int  # helper core: dequeue + propagation work
    drain_cycles: int  # helper work outstanding after the guest halts
    messages: int
    stall_cycles: int

    @property
    def total_cycles(self) -> int:
        """Wall-clock: the guest finishes, then the helper drains."""
        return self.main_cycles + self.drain_cycles

    @property
    def overhead(self) -> float:
        """Fractional overhead vs the uninstrumented run (0.48 = 48%)."""
        if self.base_cycles == 0:
            return 0.0
        return self.total_cycles / self.base_cycles - 1.0


class HelperCoreDIFT(Hook):
    """Runs a DIFT engine on a simulated helper core.

    Attach to a machine like the inline engine; afterwards call
    :meth:`report` (using the machine's final cycle counters) for the
    dual-core timing breakdown.
    """

    def __init__(
        self,
        policy: TaintPolicy,
        channel: ChannelModel | None = None,
        sinks: list[SinkRule] | None = None,
        propagate_addresses: bool = False,
    ):
        self.channel = channel or hardware_interconnect()
        # charge_overhead=False: the inline engine must not bill the main
        # core for propagation work — the helper absorbs it here.
        self.engine = DIFTEngine(
            policy,
            sinks=sinks,
            propagate_addresses=propagate_addresses,
            charge_overhead=False,
        )
        self.queue = QueueSimulator(self.channel)
        self.machine: Machine | None = None
        self._tainted_before: int = 0

    def attach(self, machine: Machine) -> "HelperCoreDIFT":
        self.machine = machine
        self.engine.machine = machine
        machine.hooks.subscribe(self)
        return self

    @property
    def alerts(self):
        return self.engine.alerts

    @property
    def shadow(self):
        return self.engine.shadow

    def on_instruction(self, ev: InstrEvent) -> None:
        machine = self.machine
        assert machine is not None
        # Main core: enqueue the (pc, regs, flags) message.
        machine.add_overhead(self.channel.enqueue_cycles)
        # Helper core: dequeue + the policy's propagation work.  Run the
        # real engine to know whether this instruction touched taint.
        before = self.engine.stats.tainted_instructions
        self.engine.on_instruction(ev)
        tainted = self.engine.stats.tainted_instructions > before
        service = self.engine.check_cycles + (
            self.engine.policy.propagate_cycles if tainted else 0
        )
        stall = self.queue.enqueue(machine.cycles.total, service)
        if stall:
            machine.add_overhead(stall)

    def on_failure(self, info) -> None:
        self.engine.on_failure(info)

    def publish_telemetry(self, registry) -> None:
        """Dump dual-core channel/stall metrics (and the inner engine's
        propagation metrics) into a registry; call after the run."""
        self.engine.publish_telemetry(registry)
        rep = self.report()
        registry.counter("multicore.messages").inc(rep.messages)
        registry.counter("multicore.stalls").inc(self.queue.stalls)
        registry.counter("multicore.stall_cycles").inc(rep.stall_cycles)
        registry.gauge("multicore.channel.capacity").set(self.channel.capacity)
        registry.gauge("multicore.queue.peak_depth").set_max(self.queue.peak_depth)
        registry.gauge("multicore.helper.busy_cycles").set(rep.helper_busy_cycles)
        registry.gauge("multicore.helper.drain_cycles").set(rep.drain_cycles)
        registry.gauge("multicore.overhead_fraction").set(rep.overhead)

    def report(self) -> HelperReport:
        machine = self.machine
        assert machine is not None
        main = machine.cycles.total
        return HelperReport(
            base_cycles=machine.cycles.base,
            main_cycles=main,
            helper_busy_cycles=self.queue.helper_free,
            drain_cycles=self.queue.drain(main),
            messages=self.queue.messages,
            stall_cycles=self.queue.stall_cycles,
        )
