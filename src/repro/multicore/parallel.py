"""True out-of-process DIFT helper over a shared-memory ring buffer.

:class:`~repro.multicore.helper.HelperCoreDIFT` *models* the paper's
§2.1 helper-core design on one timeline; this module *realizes* it: the
application (parent) process executes the guest while a real
``multiprocessing`` worker runs the unmodified
:class:`~repro.dift.engine.DIFTEngine` against a replicated shadow
store.  The two communicate over a fixed-size ring buffer in
``multiprocessing.shared_memory`` carrying struct-packed 24-byte
records — the software shared-memory channel of the paper, with the
enqueue cost paid in real wall-clock time instead of modeled cycles.

Keeping the per-instruction message small is the whole game (the paper
ships "registers and flags"; we ship less).  Register *numbers* are
static per pc, so the parent sends each pc's operand template exactly
once (through the result pipe, strictly before the first ring record
that references it) and every subsequent message carries only the
dynamic fields the engine actually reads:

==========  ========================================================
kind        dynamic payload (fields ``a``, ``b``)
==========  ========================================================
K_SKIP      run-length of consecutive engine-no-op instructions
            (branches, calls, sync — the engine only counts them)
K_GENERIC   none (ALU/move/LI: shadow update is template-static)
K_LOAD      effective address (LOAD/POP)
K_STORE     effective address (STORE/PUSH)
K_ALLOC     block base, block size
K_SPAWN     child thread id
K_IN        input value, input index
K_SINK      sink operand value, io value (ICALL/OUT)
==========  ========================================================

The worker feeds drained ring chunks straight to a pluggable
:class:`~repro.dift.kernel.PropagationKernel` — no per-record Python
loop in the worker: the reference kernel reconstructs per-pc template
events and drives the stock engine record by record, while the array
kernel (the default when numpy is importable) propagates each chunk
vectorized.  Either way the differential suite asserts the returned
alerts, taint sets and stats equal an inline reference run.

Batching (`repro.fastpath.parallel_batch` / ``--batch-size``) flushes N
records per ring publish to amortize the position updates; default off
(flush every record).  No modeled cycles are charged to the machine —
this helper trades *host* time, and its equivalence contract covers
observables (alerts / taint / stats), not the cycle model, which is
what :class:`HelperCoreDIFT` is for.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
import time
from dataclasses import dataclass, replace
from multiprocessing import shared_memory

from .. import fastpath
from ..telemetry.obs import wall_now_us
from ..dift.engine import DIFTStats, SinkRule, TaintAlert
# The 24-byte wire format is canonically defined next to the kernels
# that consume it; re-exported here for backward compatibility.
from ..dift.kernel import (
    K_ALLOC,
    K_CALL,
    K_GENERIC,
    K_IN,
    K_LOAD,
    K_RET,
    K_SINK,
    K_SKIP,
    K_SPAWN,
    K_STORE,
    RECORD,
    RECORD_SIZE,
    _fit,
    _IO_NONE,
    build_kernel,
    select_kernel,
)
from ..dift.summaries import SummaryKernel, summarizable
from ..dift.policy import TaintPolicy
from ..dift.shadow import ShadowState
from ..isa.instructions import Opcode
from ..vm.errors import AttackDetected
from ..vm.events import Hook, InstrEvent
from ..vm.machine import Machine

#: shm layout: wpos u64 @0, rpos u64 @8, done u8 @16; data follows.
_HEADER = 32
_WPOS = slice(0, 8)
_RPOS = slice(8, 16)
_DONE = 16

#: how long (s) the producer sleeps when the ring is full / empty.
_POLL_S = 0.00002

#: pseudo-kinds for call-boundary instructions (summary mode only);
#: negative so no packed record kind collides.
_SK_CALL = -1
_SK_RET = -2
_SK_ISINK = -3

#: worker busy-burst spans: coalesce bursts closer than this gap (µs)
#: and never ship more than this many — the side pipe carries a coarse,
#: bounded summary, not a per-chunk firehose.
_SPAN_GAP_US = 2_000
_MAX_WORKER_SPANS = 256

_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


@dataclass
class ParallelReport:
    """Outcome of one out-of-process helper run (host-side costs)."""

    instructions: int  # guest instructions observed by the hook
    messages: int  # data records written to the ring
    skipped: int  # instructions compressed into K_SKIP runs
    defs: int  # per-pc templates shipped
    batches: int  # ring publishes
    bytes_shipped: int
    ring_stalls: int  # producer waits for the consumer
    wall_s: float  # parent: attach -> finish
    worker_busy_s: float  # worker: time spent inside the engine
    worker_wall_s: float  # worker: process loop lifetime
    attack: str | None = None  # AttackDetected message, if one fired
    culprit_pc: int = -1
    #: coarse worker-side spans (wall-epoch-µs event dicts) shipped
    #: back over the side pipe: one whole-lifetime "helper.worker" span
    #: plus coalesced "helper.busy" bursts (see _SPAN_GAP_US).
    spans: list = None
    #: function-summary counters from the worker's kernel
    #: ({learned,hits,invalidations,records_elided}), None when off.
    summaries: dict | None = None
    #: zero-weight CALL/RET marker records shipped (summary mode only);
    #: excluded from ``messages``.
    markers: int = 0

    @property
    def worker_utilization(self) -> float:
        if self.worker_wall_s <= 0:
            return 0.0
        return min(1.0, self.worker_busy_s / self.worker_wall_s)


def _worker_main(
    shm_name: str,
    data_size: int,
    conn,
    policy: TaintPolicy,
    source_channels,
    sinks,
    propagate_addresses: bool,
    kernel_name: str,
    summaries: bool = False,
) -> None:
    """Consume the ring and feed drained chunks to a propagation kernel.

    Runs in the helper process.  Sends one result payload back through
    ``conn`` when the producer marks the stream done (or an attack
    freezes the kernel, after which the ring is drained unprocessed so
    the producer never blocks on a full ring).
    """
    shm = shared_memory.SharedMemory(name=shm_name)
    buf = shm.buf
    kern = build_kernel(
        kernel_name,
        policy,
        source_channels=source_channels,
        sinks=sinks,
        propagate_addresses=propagate_addresses,
    )
    if summaries:
        kern = SummaryKernel(kern)

    def register_def() -> None:
        tpc, instr, reg_reads, reg_writes, channel = conn.recv()
        kern.register_template(tpc, instr, reg_reads, reg_writes, channel)

    def template_provider(pc: int) -> None:
        # The producer sends a pc's template strictly before the first
        # ring record referencing it, so ``pc``'s def is already in the
        # pipe; defs arrive in first-need order but the idle loop may
        # have drained past it, hence the membership check.
        templates = kern.templates
        while pc not in templates:
            register_def()

    kern.template_provider = template_provider
    stats = kern.stats
    attack: str | None = None
    culprit = -1
    busy = 0.0
    rpos = 0
    started = time.perf_counter()
    started_us = wall_now_us()
    #: coalesced busy bursts as [start_us, end_us] pairs (bounded).
    bursts: list[list[int]] = []
    perf_counter = time.perf_counter
    propagate = kern.propagate_batch

    try:
        while True:
            wpos = int.from_bytes(buf[_WPOS], "little")
            if wpos == rpos:
                if buf[_DONE]:
                    # done is set after the final wpos update; re-read to
                    # close the race between the two stores.
                    if int.from_bytes(buf[_WPOS], "little") == rpos:
                        break
                    continue
                if conn.poll():
                    # Drain queued template defs while the ring is idle.
                    # A template-heavy program can push more def bytes
                    # than the pipe holds before its records reach the
                    # ring; if nothing recv'd here the producer's
                    # blocking send and this idle loop would deadlock.
                    register_def()
                    continue
                time.sleep(_POLL_S)
                continue
            off = rpos % data_size
            n = min(wpos - rpos, data_size - off)
            chunk = bytes(buf[_HEADER + off : _HEADER + off + n])
            rpos += n
            buf[_RPOS] = rpos.to_bytes(8, "little")
            if attack is not None:
                continue  # drain without processing; state is frozen
            t0 = perf_counter()
            try:
                propagate(chunk)
            except AttackDetected as exc:
                # Same stopping point as the inline engine: stats, taint
                # and alerts freeze exactly where the raise happened.
                attack = str(exc)
                culprit = exc.culprit_pc
            t1 = perf_counter()
            busy += t1 - t0
            s_us = started_us + int((t0 - started) * 1e6)
            e_us = started_us + int((t1 - started) * 1e6)
            if bursts and (
                s_us - bursts[-1][1] <= _SPAN_GAP_US
                or len(bursts) >= _MAX_WORKER_SPANS
            ):
                bursts[-1][1] = e_us
            else:
                bursts.append([s_us, e_us])
        if summaries and attack is None:
            # Resolve a region still buffered for matching (a frozen
            # attack keeps everything exactly where the raise left it).
            kern.settle()
        shadow = kern.shadow
        # perf_counter-derived burst ends can skew a few µs past the
        # wall clock; stretch the lifetime span so bursts always nest.
        ended_us = wall_now_us()
        if bursts:
            ended_us = max(ended_us, bursts[-1][1])
        spans = [
            {
                "name": "helper.worker",
                "ts": started_us,
                "dur": ended_us - started_us,
                "args": {"busy_s": round(busy, 6)},
            }
        ] + [
            {"name": "helper.busy", "ts": s, "dur": e - s, "args": {}}
            for s, e in bursts
        ]
        conn.send(
            {
                "stats": stats,
                "alerts": kern.alerts,
                "regs": dict(shadow.regs),
                "mem": shadow.mem_items(),
                "peak_locations": shadow.peak_locations,
                "pages_allocated": shadow.pages_allocated,
                "attack": attack,
                "culprit_pc": culprit,
                "busy_s": busy,
                "wall_s": time.perf_counter() - started,
                "spans": spans,
                "summaries": kern.counters() if summaries else None,
            }
        )
    finally:
        conn.close()
        buf.release()
        shm.close()


class ParallelHelperDIFT(Hook):
    """Offload DIFT to a real worker process; mirrors ``HelperCoreDIFT``.

    Attach to a machine like the inline engine, run the guest, then call
    :meth:`finish` (or just read :attr:`alerts` / :attr:`shadow` /
    :attr:`stats`, which finish implicitly) to collect the worker's
    results.  ``batch_size=None`` resolves through
    :func:`repro.fastpath.parallel_batch_size`; ``kernel=None`` resolves
    the worker's propagation kernel through
    :func:`repro.fastpath.propagation_kernel` (resolved parent-side so
    the availability probe and fallback accounting happen in one
    process).
    """

    def __init__(
        self,
        policy: TaintPolicy,
        source_channels: frozenset[int] | None = None,
        sinks: list[SinkRule] | None = None,
        propagate_addresses: bool = False,
        batch_size: int | None = None,
        ring_records: int = 1 << 15,
        kernel: str | None = None,
        summaries: bool | None = None,
    ):
        if ring_records < 64:
            raise ValueError("ring_records must be >= 64")
        self.policy = policy
        self.batch_size = fastpath.parallel_batch_size(batch_size)
        self.kernel_name = select_kernel(kernel, policy)
        self.summaries = fastpath.resolve(summaries, "summaries") and summarizable(
            policy
        )
        self.machine: Machine | None = None
        self._sinks = sinks if sinks is not None else [SinkRule(kind="icall")]
        self._source_channels = source_channels
        self._propagate_addresses = propagate_addresses
        self._data_size = ring_records * RECORD_SIZE
        self._flush_bytes = min(self.batch_size * RECORD_SIZE, self._data_size // 2)
        self._batch = bytearray()
        self._kinds: dict[int, int] = {}
        self._generic: dict[int, bytes] = {}
        self._fixups: dict[int, int] = {}
        #: [pending skip-run length, total skipped, skip records
        #: emitted, marker records emitted].  A list so the hot-path
        #: closure can mutate it without ``self``.
        self._skip_cell = [0, 0, 0, 0]
        self._wpos = 0
        self._rpos_cache = 0
        self._defs = 0
        self._batches = 0
        self._bytes = 0
        self._stalls = 0
        self._t0 = 0.0
        self._shm: shared_memory.SharedMemory | None = None
        self._proc = None
        self._conn = None
        self._report: ParallelReport | None = None
        self._stats: DIFTStats | None = None
        self._alerts: list[TaintAlert] = []
        self._shadow: ShadowState | None = None
        self._pages_allocated = 0

    # -- lifecycle -----------------------------------------------------------
    def attach(self, machine: Machine) -> "ParallelHelperDIFT":
        self.machine = machine
        self._shm = shared_memory.SharedMemory(
            create=True, size=_HEADER + self._data_size
        )
        self._shm.buf[:_HEADER] = bytes(_HEADER)
        self._conn, child_conn = _CTX.Pipe(duplex=True)
        self._proc = _CTX.Process(
            target=_worker_main,
            args=(
                self._shm.name,
                self._data_size,
                child_conn,
                self.policy,
                self._source_channels,
                self._sinks,
                self._propagate_addresses,
                self.kernel_name,
                self.summaries,
            ),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        # Shadow the class-level hook with a closure whose state lives in
        # cells/bound methods: the interpreter calls this once per guest
        # instruction, so every ``self._x`` lookup removed here is a
        # measurable slice of the application core's overhead.
        self.on_instruction = self._build_hook()
        self._t0 = time.perf_counter()
        machine.hooks.subscribe(self)
        return self

    # -- the hook ------------------------------------------------------------
    def _build_hook(self):
        kinds_get = self._kinds.get
        generic = self._generic
        generic_get = generic.get
        pack = RECORD.pack
        batch = self._batch
        extend = batch.extend
        cell = self._skip_cell
        fixups = self._fixups
        flush_bytes = self._flush_bytes
        publish = self._publish
        define = self._define
        fit = _fit
        io_none = _IO_NONE
        SKIP, GENERIC, LOAD, STORE = K_SKIP, K_GENERIC, K_LOAD, K_STORE
        ALLOC, SPAWN, IN, SINK = K_ALLOC, K_SPAWN, K_IN, K_SINK

        def on_instruction(ev: InstrEvent) -> None:
            pc = ev.pc
            kind = kinds_get(pc)
            if kind is None:
                kind = define(ev)
            if kind < 0:
                # Call boundaries (summary mode); same layout as the
                # inline engine's closure: CALL/RET fold their skip
                # weight into the run, cut it, append the zero-weight
                # marker; ICALL cuts the run and puts its K_CALL(a=1)
                # marker just before its own sink record.
                if kind == _SK_ISINK:
                    run = cell[0]
                    if run:
                        extend(pack(SKIP, 0, 0, run, 0))
                        cell[1] += run
                        cell[2] += 1
                        cell[0] = 0
                    extend(pack(K_CALL, ev.tid, pc, 1, 0))
                    cell[3] += 1
                    kind = SINK
                else:
                    cell[0] += 1
                    run = cell[0]
                    extend(pack(SKIP, 0, 0, run, 0))
                    cell[1] += run
                    cell[2] += 1
                    cell[0] = 0
                    extend(
                        pack(
                            K_CALL if kind == _SK_CALL else K_RET, ev.tid, pc, 0, 0
                        )
                    )
                    cell[3] += 1
                    if len(batch) >= flush_bytes:
                        publish()
                    return
            if kind == SKIP:
                cell[0] += 1
                return
            run = cell[0]
            if run:
                extend(pack(SKIP, 0, 0, run, 0))
                cell[1] += run
                cell[2] += 1
                cell[0] = 0
            tid = ev.tid
            if kind == GENERIC:
                key = pc << 16 | tid
                rec = generic_get(key)
                if rec is None:
                    rec = pack(GENERIC, tid, pc, 0, 0)
                    generic[key] = rec
                extend(rec)
            elif kind == LOAD:
                extend(pack(LOAD, tid, pc, ev.mem_reads[0][0], 0))
            elif kind == STORE:
                extend(pack(STORE, tid, pc, ev.mem_writes[0][0], 0))
            elif kind == SINK:
                value = ev.reg_reads[0][1]
                io = ev.io_value
                a = fit(value)
                b = io_none if io is None else fit(io)
                if a != value or (io is not None and b != io):
                    # Taint never depends on these values; remember the
                    # true sink value so returned alerts can be patched.
                    fixups[ev.seq] = io if io is not None else value
                extend(pack(SINK, tid, pc, a, b))
            elif kind == IN:
                extend(pack(IN, tid, pc, fit(ev.io_value), ev.input_index))
            elif kind == ALLOC:
                base, size = ev.alloc
                extend(pack(ALLOC, tid, pc, base, size))
            else:  # K_SPAWN
                extend(pack(SPAWN, tid, pc, ev.reg_writes[0][1], 0))
            if len(batch) >= flush_bytes:
                publish()

        return on_instruction

    def _define(self, ev: InstrEvent) -> int:
        op = ev.instr.opcode
        # Must mirror DIFTEngine.on_instruction's dispatch chain so each
        # pc's record kind matches the branch the worker's engine takes.
        if op is Opcode.IN:
            kind = K_IN
        elif op is Opcode.LOAD or op is Opcode.POP:
            kind = K_LOAD
        elif op is Opcode.STORE or op is Opcode.PUSH:
            kind = K_STORE
        elif op is Opcode.ALLOC:
            kind = K_ALLOC
        elif op is Opcode.SPAWN:
            kind = K_SPAWN
        elif ev.reg_writes:
            kind = K_GENERIC
        elif op is Opcode.ICALL or op is Opcode.OUT:
            kind = K_SINK
        else:
            kind = K_SKIP
        if kind != K_SKIP:
            # Ship the static operand template before any ring record
            # can reference this pc.
            self._conn.send((ev.pc, ev.instr, ev.reg_reads, ev.reg_writes, ev.channel))
            self._defs += 1
        if self.summaries:
            if op is Opcode.CALL:
                kind = _SK_CALL
            elif op is Opcode.RET:
                kind = _SK_RET
            elif op is Opcode.ICALL:
                kind = _SK_ISINK
        self._kinds[ev.pc] = kind
        return kind

    # -- ring producer -------------------------------------------------------
    def _publish(self) -> None:
        data = self._batch
        n = len(data)
        if not n:
            return
        shm = self._shm
        assert shm is not None
        buf = shm.buf
        size = self._data_size
        wpos = self._wpos
        pos = 0
        while pos < n:
            avail = size - (wpos - self._rpos_cache)
            if avail < RECORD_SIZE:
                self._rpos_cache = int.from_bytes(buf[_RPOS], "little")
                avail = size - (wpos - self._rpos_cache)
                spins = 0
                while avail < RECORD_SIZE:
                    self._stalls += 1
                    time.sleep(_POLL_S)
                    spins += 1
                    if spins % 2000 == 0 and not self._proc.is_alive():
                        raise RuntimeError(
                            "parallel DIFT worker died with the ring full"
                        )
                    self._rpos_cache = int.from_bytes(buf[_RPOS], "little")
                    avail = size - (wpos - self._rpos_cache)
            take = min(avail, n - pos)
            take -= take % RECORD_SIZE  # publishes stay record-aligned
            off = wpos % size
            first = min(take, size - off)
            buf[_HEADER + off : _HEADER + off + first] = data[pos : pos + first]
            if first < take:
                buf[_HEADER : _HEADER + take - first] = data[pos + first : pos + take]
            wpos += take
            pos += take
            # Data is in place before the position becomes visible.
            buf[_WPOS] = wpos.to_bytes(8, "little")
        self._wpos = wpos
        self._batches += 1
        self._bytes += n
        # Clear in place: the hot-path closure holds this bytearray.
        del data[:]

    # -- completion ----------------------------------------------------------
    def finish(self, timeout_s: float = 300.0) -> ParallelReport:
        """Flush, signal end-of-stream, and collect the worker's state.

        Idempotent; returns the same :class:`ParallelReport` afterwards.
        """
        if self._report is not None:
            return self._report
        cell = self._skip_cell
        if cell[0]:
            self._batch.extend(RECORD.pack(K_SKIP, 0, 0, cell[0], 0))
            cell[1] += cell[0]
            cell[2] += 1
            cell[0] = 0
        self._publish()
        shm = self._shm
        assert shm is not None and self._proc is not None and self._conn is not None
        shm.buf[_DONE] = 1
        deadline = time.monotonic() + timeout_s
        payload = None
        while payload is None:
            if self._conn.poll(0.05):
                try:
                    payload = self._conn.recv()
                except EOFError:
                    self._cleanup()
                    raise RuntimeError(
                        "parallel DIFT worker closed the pipe without results"
                    ) from None
                break
            if not self._proc.is_alive():
                self._cleanup()
                raise RuntimeError(
                    f"parallel DIFT worker exited (code {self._proc.exitcode}) "
                    "without returning results"
                )
            if time.monotonic() > deadline:
                self._proc.terminate()
                self._cleanup()
                raise RuntimeError("parallel DIFT worker timed out")
        self._proc.join(timeout=10.0)
        wall = time.perf_counter() - self._t0
        self._cleanup()

        self._stats = payload["stats"]
        alerts = payload["alerts"]
        if self._fixups:
            alerts = [
                replace(a, value=self._fixups[a.seq]) if a.seq in self._fixups else a
                for a in alerts
            ]
        self._alerts = alerts
        shadow = ShadowState(self.policy, regs=payload["regs"], mem=payload["mem"])
        shadow.peak_locations = payload["peak_locations"]
        self._shadow = shadow
        self._pages_allocated = payload["pages_allocated"]
        # Counters are derived at completion rather than maintained per
        # event: every record is RECORD_SIZE bytes, so the shipped byte
        # count gives the record total, and each skip record carries its
        # run length (accumulated in the cell when the record is cut).
        # Zero-weight CALL/RET markers (summary mode) are reported on
        # their own so messages keeps meaning weight-bearing records.
        markers = cell[3]
        messages = self._bytes // RECORD_SIZE - markers
        skipped = cell[1]
        self._report = ParallelReport(
            instructions=(messages - cell[2]) + skipped,
            messages=messages,
            markers=markers,
            skipped=skipped,
            defs=self._defs,
            batches=self._batches,
            bytes_shipped=self._bytes,
            ring_stalls=self._stalls,
            wall_s=wall,
            worker_busy_s=payload["busy_s"],
            worker_wall_s=payload["wall_s"],
            attack=payload["attack"],
            culprit_pc=payload["culprit_pc"],
            spans=payload.get("spans") or [],
            summaries=payload.get("summaries"),
        )
        return self._report

    def _cleanup(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
            self._shm = None

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            if self._proc is not None and self._proc.is_alive():
                self._proc.terminate()
            self._cleanup()
        except Exception:
            pass

    # -- results (mirror HelperCoreDIFT / DIFTEngine surface) ---------------
    @property
    def alerts(self) -> list[TaintAlert]:
        self.finish()
        return self._alerts

    @property
    def shadow(self) -> ShadowState:
        self.finish()
        assert self._shadow is not None
        return self._shadow

    @property
    def stats(self) -> DIFTStats:
        self.finish()
        assert self._stats is not None
        return self._stats

    def report(self) -> ParallelReport:
        return self.finish()

    def publish_spans(self, tracer) -> int:
        """Emit the worker's spans into a wall-clock tracer.

        ``tracer`` is anything with the
        :meth:`~repro.telemetry.obs.WallSpanTracer.span_at` retroactive
        interface; returns the number of spans emitted (0 for tracers
        without it, e.g. the engine's cycle-clock ``SpanTracer``).
        """
        rep = self.finish()
        span_at = getattr(tracer, "span_at", None)
        if span_at is None or not rep.spans:
            return 0
        for s in rep.spans:
            span_at(s["name"], s["ts"], s["dur"], cat="helper", **(s.get("args") or {}))
        return len(rep.spans)

    def publish_telemetry(self, registry) -> None:
        """Dump channel + propagation metrics into a registry (the
        ``dift.*`` keys mirror ``DIFTEngine.publish_telemetry``)."""
        rep = self.finish()
        stats = self.stats
        shadow = self.shadow
        registry.counter("dift.instructions").inc(stats.instructions)
        registry.counter("dift.propagations").inc(stats.tainted_instructions)
        registry.counter("dift.sources").inc(stats.sources)
        registry.counter("dift.sink_checks").inc(stats.sink_checks)
        registry.counter("dift.alerts").inc(len(self.alerts))
        registry.gauge("dift.taint_rate").set(stats.taint_rate)
        registry.gauge("dift.tainted_locations.peak").set_max(shadow.peak_locations)
        registry.gauge("dift.tainted_locations.final").set(
            shadow.tainted_cells + shadow.tainted_regs
        )
        registry.gauge("dift.shadow_bytes").set(shadow.shadow_bytes)
        registry.counter("shadow.pages_allocated").inc(self._pages_allocated)
        registry.counter("multicore.parallel.messages").inc(rep.messages)
        registry.counter("multicore.parallel.instructions").inc(rep.instructions)
        registry.counter("multicore.parallel.skipped").inc(rep.skipped)
        registry.counter("multicore.parallel.defs").inc(rep.defs)
        registry.counter("multicore.parallel.batches").inc(rep.batches)
        registry.counter("multicore.parallel.bytes_shipped").inc(rep.bytes_shipped)
        registry.counter("multicore.parallel.ring_stalls").inc(rep.ring_stalls)
        registry.gauge("multicore.parallel.batch_size").set(self.batch_size)
        registry.gauge("multicore.parallel.worker_utilization").set(
            rep.worker_utilization
        )
        if rep.summaries is not None:
            for key, value in rep.summaries.items():
                registry.counter(f"dift.summaries.{key}").inc(value)


__all__ = [
    "K_ALLOC",
    "K_GENERIC",
    "K_IN",
    "K_LOAD",
    "K_SINK",
    "K_SKIP",
    "K_SPAWN",
    "K_STORE",
    "RECORD",
    "RECORD_SIZE",
    "ParallelHelperDIFT",
    "ParallelReport",
]
