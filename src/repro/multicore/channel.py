"""Communication channels between the application core and the DIFT
helper core (§2.1, "Exploiting multicores", citing [3]).

The helper-thread design communicates "registers and flags between the
main and helper threads"; the paper explores a **software** (shared
memory) and a **hardware** (dedicated interconnect) channel.  The
difference is pure cost structure, which is what these classes model:

* enqueue cycles charged to the *main* core per message,
* dequeue cycles charged to the *helper* core per message,
* a bounded queue — when the helper falls behind by more than
  ``capacity`` messages, the main core stalls (back-pressure).

A shared-memory queue pays cache-coherence traffic on both ends and
gets a deeper buffer; a dedicated interconnect is nearly free per
message but shallow.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class ChannelModel:
    """Cost/capacity description of one main->helper channel."""

    name: str
    enqueue_cycles: int
    dequeue_cycles: int
    capacity: int

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("channel capacity must be >= 1")


def shared_memory_channel(capacity: int = 4096) -> ChannelModel:
    """Software queue in shared memory: coherence misses on both sides."""
    return ChannelModel(
        name="sw-shared-memory", enqueue_cycles=6, dequeue_cycles=4, capacity=capacity
    )


def hardware_interconnect(capacity: int = 64) -> ChannelModel:
    """Dedicated core-to-core interconnect: ~1 cycle per message."""
    return ChannelModel(
        name="hw-interconnect", enqueue_cycles=1, dequeue_cycles=1, capacity=capacity
    )


@dataclass
class QueueSimulator:
    """In-order single-server queue between two timelines.

    The main core enqueues message ``i`` at time ``t_i`` (its own
    cycle count); the helper serves messages FIFO, each taking
    ``service`` cycles, starting no earlier than its enqueue time.
    When ``capacity`` messages are in flight the producer stalls until
    the oldest completes.
    """

    channel: ChannelModel
    helper_free: int = 0
    #: completion times of in-flight messages (monotone).
    in_flight: deque = field(default_factory=deque)
    messages: int = 0
    stall_cycles: int = 0
    stalls: int = 0
    #: deepest the queue ever got (back-pressure indicator).
    peak_depth: int = 0

    def enqueue(self, main_time: int, service_cycles: int) -> int:
        """Enqueue one message at ``main_time``; returns the stall (in
        cycles) the main core must absorb for back-pressure."""
        flight = self.in_flight
        while flight and flight[0] <= main_time:
            flight.popleft()
        stall = 0
        if len(flight) >= self.channel.capacity:
            # Stall until the oldest message completes, then drain every
            # completion the stall covered — a message only leaves
            # ``in_flight`` once its completion time has passed, so the
            # queue depth never counts phantom (or still-pending) slots.
            stall = max(0, flight[0] - main_time)
            self.stall_cycles += stall
            self.stalls += 1
            main_time += stall
            while flight and flight[0] <= main_time:
                flight.popleft()
        start = max(self.helper_free, main_time)
        self.helper_free = start + self.channel.dequeue_cycles + service_cycles
        flight.append(self.helper_free)
        self.messages += 1
        if len(flight) > self.peak_depth:
            self.peak_depth = len(flight)
        return stall

    def drain(self, main_time: int) -> int:
        """Cycles (past ``main_time``) until the helper finishes all work."""
        return max(0, self.helper_free - main_time)
