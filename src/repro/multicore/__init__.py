"""Helper-core DIFT: communication channel models and the dual-core
timing simulation (§2.1)."""

from .channel import (
    ChannelModel,
    QueueSimulator,
    hardware_interconnect,
    shared_memory_channel,
)
from .helper import HelperCoreDIFT, HelperReport
from .parallel import ParallelHelperDIFT, ParallelReport

__all__ = [
    "ChannelModel",
    "QueueSimulator",
    "hardware_interconnect",
    "shared_memory_channel",
    "HelperCoreDIFT",
    "HelperReport",
    "ParallelHelperDIFT",
    "ParallelReport",
]
