"""SPLASH-style parallel kernels (§2.2, §3.1).

Two representations, for the two studies that need them:

* **Op-stream kernels** (:func:`tm_kernels`) feed the TM monitoring
  simulation: barrier-phased stencils, lock-protected reductions, and
  flag-synchronized pipelines — the synchronization idioms [9] shows
  cause livelock under naive conflict resolution.
* **MiniC kernels** (:func:`race_kernels`) run on the VM for the race
  detection study: each comes with known ground truth — which
  cross-thread accesses are real races, which are benign flag
  synchronization, and which are lock-protected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.codegen import CompiledProgram, compile_source
from ..runner import ProgramRunner
from ..tm.ops import Op, ParallelWorkload, ThreadProgram

# ---------------------------------------------------------------------------
# Op-stream kernels for the TM monitor
# ---------------------------------------------------------------------------


def barrier_stencil(threads: int = 4, cells_per_thread: int = 12, phases: int = 3) -> ParallelWorkload:
    """Phased stencil: read the neighbour's previous-phase strip, write
    your own strip, barrier.

    Under naive TM a thread reaches the barrier with its transaction
    still open (the strip is smaller than the transaction window), so a
    neighbour that must *read* those cells before arriving conflicts
    with a thread that is blocked at the barrier and cannot commit —
    the barrier livelock of [9].
    """
    barrier_id = 1
    progs = []
    for t in range(threads):
        ops: list[Op] = []
        base = 1000 + t * cells_per_thread
        neighbour = 1000 + ((t + 1) % threads) * cells_per_thread
        for phase in range(phases):
            if phase > 0:
                for i in range(cells_per_thread):
                    ops.append(Op.read(neighbour + i))
            for i in range(cells_per_thread):
                ops.append(Op.write(base + i))
            ops.append(Op.local(4))
            ops.append(Op.barrier(barrier_id))
        progs.append(ThreadProgram(t, ops))
    return ParallelWorkload(
        "barrier-stencil", progs, barriers={barrier_id: threads}
    )


def lock_reduction(threads: int = 4, iterations: int = 20) -> ParallelWorkload:
    """Lock-protected shared accumulator plus private work."""
    acc = 2000
    lock_id = 5
    progs = []
    for t in range(threads):
        ops: list[Op] = []
        for _ in range(iterations):
            ops.append(Op.local(3))
            ops.append(Op.lock(lock_id))
            ops.append(Op.read(acc))
            ops.append(Op.write(acc))
            ops.append(Op.unlock(lock_id))
        progs.append(ThreadProgram(t, ops))
    return ParallelWorkload("lock-reduction", progs, barriers={})


def flag_pipeline(stages: int = 3, items: int = 6) -> ParallelWorkload:
    """Producer-consumer pipeline synchronized with per-stage flags.

    Stage k spins on flag k until stage k-1 sets it — the flag livelock
    scenario under naive TM.
    """
    progs = []
    for s in range(stages):
        ops: list[Op] = []
        data_base = 3000 + s * 64
        prev_base = 3000 + (s - 1) * 64
        for item in range(items):
            flag_in = 4000 + (s - 1) * 32 + item
            flag_out = 4000 + s * 32 + item
            if s > 0:
                ops.append(Op.flag_wait(flag_in))
                ops.append(Op.read(prev_base + item))
            ops.append(Op.local(5))
            ops.append(Op.write(data_base + item))
            if s < stages - 1:
                ops.append(Op.flag_set(flag_out))
        progs.append(ThreadProgram(s, ops))
    return ParallelWorkload("flag-pipeline", progs, barriers={})


def tm_kernels() -> list[ParallelWorkload]:
    """The SPLASH-like suite for the TM monitoring experiment (E6)."""
    return [barrier_stencil(), lock_reduction(), flag_pipeline()]


# ---------------------------------------------------------------------------
# MiniC kernels for race detection
# ---------------------------------------------------------------------------


@dataclass
class RaceKernel:
    name: str
    compiled: CompiledProgram
    #: ground truth: source lines of genuinely racy accesses.
    racy_lines: set[int]
    #: lines participating in benign flag synchronization.
    flag_lines: set[int] = field(default_factory=set)

    def runner(self, max_instructions: int = 5_000_000) -> ProgramRunner:
        return ProgramRunner(self.compiled.program, max_instructions=max_instructions)


def locked_counter_kernel() -> RaceKernel:
    """Fully synchronized: no true races, lock protects everything."""
    src = (
        "global counter;\n"  # 1
        "fn worker(n) {\n"  # 2
        "    var i = 0;\n"  # 3
        "    while (i < n) {\n"  # 4
        "        lock(1);\n"  # 5
        "        counter = counter + 1;\n"  # 6
        "        unlock(1);\n"  # 7
        "        i = i + 1;\n"  # 8
        "    }\n"
        "}\n"
        "fn main() {\n"  # 11
        "    var a = spawn(worker, 10);\n"  # 12
        "    var b = spawn(worker, 10);\n"  # 13
        "    join(a);\n"  # 14
        "    join(b);\n"  # 15
        "    out(counter, 1);\n"  # 16
        "}\n"
    )
    return RaceKernel("locked-counter", compile_source(src), racy_lines=set())


def flag_sync_kernel() -> RaceKernel:
    """Producer/consumer via flag spin: the flag accesses race benignly
    (recognized synchronization); the data accesses are ordered by it."""
    src = (
        "global data;\n"  # 1
        "global flag;\n"  # 2
        "fn producer(x) {\n"  # 3
        "    data = x * 10;\n"  # 4
        "    flag = 1;\n"  # 5  <- flag set (benign race)
        "}\n"
        "fn main() {\n"  # 7
        "    var t = spawn(producer, 7);\n"  # 8
        "    while (flag == 0) { }\n"  # 9  <- flag spin (benign race)
        "    out(data, 1);\n"  # 10 <- ordered by the flag sync
        "    join(t);\n"  # 11
        "}\n"
    )
    return RaceKernel(
        "flag-sync",
        compile_source(src),
        racy_lines=set(),
        flag_lines={5, 9},
    )


def true_race_kernel() -> RaceKernel:
    """A genuine unsynchronized read-write race on ``shared``."""
    src = (
        "global shared;\n"  # 1
        "global sink;\n"  # 2
        "fn writer(v) {\n"  # 3
        "    shared = v;\n"  # 4  <- racy write
        "}\n"
        "fn main() {\n"  # 6
        "    shared = 1;\n"  # 7
        "    var t = spawn(writer, 9);\n"  # 8
        "    sink = shared;\n"  # 9  <- racy read (no sync vs line 4)
        "    join(t);\n"  # 10
        "    out(sink, 1);\n"  # 11
        "}\n"
    )
    return RaceKernel("true-race", compile_source(src), racy_lines={4, 9})


def mixed_kernel() -> RaceKernel:
    """Lock-protected counter + flag sync + one true race, together."""
    src = (
        "global counter;\n"  # 1
        "global flag;\n"  # 2
        "global data;\n"  # 3
        "global racy;\n"  # 4
        "fn worker(n) {\n"  # 5
        "    var i = 0;\n"  # 6
        "    while (i < n) {\n"  # 7
        "        lock(1);\n"  # 8
        "        counter = counter + 1;\n"  # 9
        "        unlock(1);\n"  # 10
        "        i = i + 1;\n"  # 11
        "    }\n"
        "    data = n * 100;\n"  # 13
        "    flag = 1;\n"  # 14 <- benign flag set
        "    racy = n;\n"  # 15 <- true racy write
        "}\n"
        "fn main() {\n"  # 17
        "    var t = spawn(worker, 8);\n"  # 18
        "    while (flag == 0) { }\n"  # 19 <- benign flag spin
        "    out(data, 1);\n"  # 20 <- ordered by flag
        "    var x = racy;\n"  # 21 <- true racy read
        "    join(t);\n"  # 22
        "    out(counter + x, 1);\n"  # 23
        "}\n"
    )
    return RaceKernel(
        "mixed",
        compile_source(src),
        racy_lines={15, 21},
        flag_lines={14, 19},
    )


def race_kernels() -> list[RaceKernel]:
    """The race-detection kernel suite (E9)."""
    return [locked_counter_kernel(), flag_sync_kernel(), true_race_kernel(), mixed_kernel()]
