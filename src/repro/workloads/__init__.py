"""Synthetic workload corpora standing in for the paper's benchmarks
(SPEC 2000, MySQL, SPLASH-2, scientific pipelines) — see DESIGN.md §2
for the substitution table."""

from .buggy import BuggyProgram, by_category, corpus
from .generators import (
    GeneratedProgram,
    GeneratorConfig,
    ProgramGenerator,
    call_heavy,
    call_heavy_suite,
    generate,
)
from .scientific import (
    cumulative_sum,
    LineageWorkload,
    block_select,
    lineage_suite,
    moving_average,
    scatter_pick,
    stencil_chain,
)
from .server import ServerScenario, build_server
from .spec_like import Workload, bfs, fsm, hashloop, matmul, rle, sort, suite
from .splash_like import (
    RaceKernel,
    barrier_stencil,
    flag_pipeline,
    flag_sync_kernel,
    lock_reduction,
    locked_counter_kernel,
    mixed_kernel,
    race_kernels,
    tm_kernels,
    true_race_kernel,
)

__all__ = [
    "BuggyProgram",
    "GeneratedProgram",
    "GeneratorConfig",
    "ProgramGenerator",
    "call_heavy",
    "call_heavy_suite",
    "generate",
    "by_category",
    "corpus",
    "LineageWorkload",
    "cumulative_sum",
    "block_select",
    "lineage_suite",
    "moving_average",
    "scatter_pick",
    "stencil_chain",
    "ServerScenario",
    "build_server",
    "Workload",
    "bfs",
    "fsm",
    "hashloop",
    "matmul",
    "rle",
    "sort",
    "suite",
    "RaceKernel",
    "barrier_stencil",
    "flag_pipeline",
    "flag_sync_kernel",
    "lock_reduction",
    "locked_counter_kernel",
    "mixed_kernel",
    "race_kernels",
    "tm_kernels",
    "true_race_kernel",
]
