"""Random MiniC program generation for differential testing.

The tracing/slicing/replay stack has strong cross-checkable invariants
(online-naive DDG == offline DDG; tracing never changes guest output;
replay is bit-identical; optimized slices == naive slices).  Hand
written workloads exercise the paths we thought of; this generator
produces arbitrary-but-terminating MiniC programs so the differential
tests in ``tests/test_differential.py`` can exercise the ones we did
not.

Generated programs are closed (no inputs unless requested), always
terminate (loops are bounded counters), never trap (division uses a
guarded divisor), and emit several checksums — every one is a full
pipeline through globals, locals, arrays, calls, branches and loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.codegen import CompiledProgram, compile_source
from ..runner import ProgramRunner
from ..util.rng import DeterministicRng
from .spec_like import Workload


@dataclass
class GeneratorConfig:
    max_depth: int = 3
    max_stmts_per_block: int = 5
    num_globals: int = 3
    num_arrays: int = 2
    array_size: int = 8
    num_helpers: int = 2
    loop_bound_max: int = 6
    use_inputs: bool = False
    input_count: int = 4


class ProgramGenerator:
    """Seeded generator: same seed, same program, forever."""

    def __init__(self, seed: int, config: GeneratorConfig | None = None):
        self.rng = DeterministicRng(seed)
        self.config = config or GeneratorConfig()
        #: readable locals (includes loop counters).
        self._locals: list[str] = []
        #: assignable locals (excludes loop counters, so generated bodies
        #: can never clobber a counter and loop forever).
        self._mutable: list[str] = []
        self._fresh = 0

    # -- naming ----------------------------------------------------------
    def _name(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    # -- expressions ---------------------------------------------------------
    def expr(self, depth: int = 0) -> str:
        rng = self.rng
        cfg = self.config
        choices = ["const", "local", "global", "array"]
        if depth < cfg.max_depth:
            choices += ["binop", "binop", "unop", "cmp"]
            if cfg.num_helpers:
                choices.append("call")
        kind = rng.choice(choices)
        if kind == "const":
            return str(rng.randint(-20, 20))
        if kind == "local" and self._locals:
            return rng.choice(self._locals)
        if kind == "global":
            return f"g{rng.randint(0, cfg.num_globals - 1)}"
        if kind == "array":
            idx = self.expr(cfg.max_depth)  # shallow index
            return f"arr{rng.randint(0, cfg.num_arrays - 1)}[({idx}) % {cfg.array_size}]"
        if kind == "binop":
            op = rng.choice(["+", "-", "*", "&", "|", "^"])
            return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"
        if kind == "cmp":
            op = rng.choice(["<", "<=", "==", "!=", ">", ">="])
            return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"
        if kind == "unop":
            return f"(-{self.expr(depth + 1)})"
        if kind == "call":
            helper = rng.randint(0, cfg.num_helpers - 1)
            return f"h{helper}({self.expr(depth + 1)})"
        return str(rng.randint(0, 9))  # fallback (e.g. no locals yet)

    # -- statements -------------------------------------------------------------
    def stmt(self, depth: int, indent: str) -> list[str]:
        rng = self.rng
        cfg = self.config
        choices = ["assign_local", "assign_global", "assign_array", "out"]
        if depth < cfg.max_depth:
            choices += ["if", "if", "loop"]
        kind = rng.choice(choices)
        if kind == "assign_local":
            if self._mutable and rng.randint(0, 1):
                name = rng.choice(self._mutable)
                return [f"{indent}{name} = {self.expr()};"]
            name = self._name("v")
            self._locals.append(name)
            self._mutable.append(name)
            return [f"{indent}var {name} = {self.expr()};"]
        if kind == "assign_global":
            g = rng.randint(0, cfg.num_globals - 1)
            return [f"{indent}g{g} = {self.expr()};"]
        if kind == "assign_array":
            a = rng.randint(0, cfg.num_arrays - 1)
            idx = self.expr(cfg.max_depth)
            return [f"{indent}arr{a}[({idx}) % {cfg.array_size}] = {self.expr()};"]
        if kind == "out":
            return [f"{indent}out({self.expr()}, 1);"]
        if kind == "if":
            lines = [f"{indent}if ({self.expr(depth + 1)}) {{"]
            lines += self.block(depth + 1, indent + "    ")
            if rng.randint(0, 1):
                lines.append(f"{indent}}} else {{")
                lines += self.block(depth + 1, indent + "    ")
            lines.append(f"{indent}}}")
            return lines
        # bounded counter loop: always terminates
        counter = self._name("i")
        bound = rng.randint(1, cfg.loop_bound_max)
        lines = [
            f"{indent}var {counter} = 0;",
            f"{indent}while ({counter} < {bound}) {{",
        ]
        self._locals.append(counter)  # readable, never in _mutable
        lines += self.block(depth + 1, indent + "    ")
        lines.append(f"{indent}    {counter} = {counter} + 1;")
        lines.append(f"{indent}}}")
        return lines

    def block(self, depth: int, indent: str) -> list[str]:
        lines: list[str] = []
        for _ in range(self.rng.randint(1, self.config.max_stmts_per_block)):
            lines += self.stmt(depth, indent)
        return lines

    # -- whole program -------------------------------------------------------------
    def source(self) -> str:
        cfg = self.config
        rng = self.rng
        parts: list[str] = []
        for g in range(cfg.num_globals):
            parts.append(f"global g{g};")
        for a in range(cfg.num_arrays):
            parts.append(f"global arr{a}[{cfg.array_size}];")
        # Helpers: pure-ish functions over one argument (safe division).
        for h in range(cfg.num_helpers):
            k1, k2 = rng.randint(1, 9), rng.randint(1, 9)
            op = rng.choice(["+", "*", "^", "-"])
            parts.append(
                f"fn h{h}(x) {{ return (x {op} {k1}) + x / {k2}; }}"
            )
        self._locals = []
        self._mutable = []
        self._fresh = 0
        body: list[str] = []
        if cfg.use_inputs:
            for i in range(cfg.input_count):
                name = self._name("v")
                self._locals.append(name)
                self._mutable.append(name)
                body.append(f"    var {name} = in(0);")
        body += self.block(0, "    ")
        # Final checksums so every run is comparable.
        checksum = " + ".join(
            [f"g{g}" for g in range(cfg.num_globals)]
            + [f"arr{a}[{i}]" for a in range(cfg.num_arrays) for i in (0, cfg.array_size - 1)]
        )
        body.append(f"    out({checksum}, 1);")
        parts.append("fn main() {")
        parts.extend(body)
        parts.append("}")
        return "\n".join(parts) + "\n"


@dataclass
class GeneratedProgram:
    seed: int
    source: str
    compiled: CompiledProgram
    inputs: dict[int, list[int]] = field(default_factory=dict)

    def runner(self, max_instructions: int = 500_000) -> ProgramRunner:
        return ProgramRunner(
            self.compiled.program,
            inputs={k: list(v) for k, v in self.inputs.items()},
            max_instructions=max_instructions,
        )


def generate(seed: int, config: GeneratorConfig | None = None) -> GeneratedProgram:
    """Generate, compile and package one random program."""
    config = config or GeneratorConfig()
    gen = ProgramGenerator(seed, config)
    source = gen.source()
    compiled = compile_source(source)
    inputs: dict[int, list[int]] = {}
    if config.use_inputs:
        rng = DeterministicRng(seed ^ 0x5EED)
        inputs[0] = [rng.randint(-50, 50) for _ in range(config.input_count)]
    return GeneratedProgram(seed=seed, source=source, compiled=compiled, inputs=inputs)


# ---------------------------------------------------------------------------
# Call-heavy family (function-summary DIFT workloads)
# ---------------------------------------------------------------------------
_HELPER_OPS = ("+", "^", "-", "+", "|", "^", "&", "+")


def _helper_source(idx: int, stmts: int, nested_call: str | None) -> str:
    """One helper: a long straight-line arithmetic body over ``x``.

    No branches, no loop-varying addresses — every invocation replays
    the identical record byte sequence, which is exactly the region
    shape function summaries thrive on.  The fixed-global read gives
    the footprint a memory key in addition to the argument register.
    """
    lines = [f"fn h{idx}(x) {{", "    var acc = x;"]
    for j in range(stmts):
        op = _HELPER_OPS[(idx + j) % len(_HELPER_OPS)]
        k = 3 + (idx * 7 + j * 5) % 23
        lines.append(f"    acc = (acc {op} {k}) + x * {1 + j % 5};")
    if nested_call is not None:
        lines.append(f"    acc = acc + {nested_call};")
    lines.append(f"    acc = (acc + gh{idx}) % 1048573;")
    lines.append("    return acc;")
    lines.append("}")
    return "\n".join(lines)


def call_heavy(
    divergent_every: int = 0,
    iterations: int = 48,
    stmts: int = 32,
    name: str = "calls",
) -> Workload:
    """Call-dominated kernel with tunable call-site polymorphism.

    Four helpers (two of them nesting a second call) are invoked from a
    loop, so every call site re-enters with the same code bytes each
    iteration.  ``divergent_every=M`` passes a *clean* constant instead
    of the tainted input every M-th iteration, flipping the callee's
    input-footprint labels — the worst case for learned summaries,
    exercising guard invalidation, relearning and blacklisting.  ``0``
    keeps every site monomorphic (the summary fast path's best case).
    """
    helpers = "\n".join(
        [
            _helper_source(0, stmts, None),
            _helper_source(1, stmts, "h0(acc)"),
            _helper_source(2, stmts, None),
            _helper_source(3, stmts, "h2(x + acc)"),
        ]
    )
    if divergent_every > 0:
        flip = (
            f"        if ((i % {divergent_every}) == 0) {{ a = 7; }}\n"
        )
    else:
        flip = ""
    src = (
        "global g0; global g1; global g2; global g3;\n"
        "global gh0; global gh1; global gh2; global gh3;\n"
        f"{helpers}\n"
        "fn main() {\n"
        "    var t = in(0);\n"
        "    var i = 0;\n"
        f"    while (i < {iterations}) {{\n"
        "        var a = t;\n"
        f"{flip}"
        "        g0 = (g0 + h0(a)) % 1048573;\n"
        "        g1 = (g1 + h1(t)) % 1048573;\n"
        "        g2 = (g2 + h2(a)) % 1048573;\n"
        "        g3 = (g3 + h3(t)) % 1048573;\n"
        "        i = i + 1;\n"
        "    }\n"
        "    out((g0 + g1 + g2 + g3) % 1048573, 1);\n"
        "}\n"
    )
    return Workload(
        name,
        compile_source(src),
        {0: [1234567]},
        f"call-heavy kernel ({divergent_every or 'no'}-way polymorphism)",
    )


def call_heavy_suite(scale: int = 1) -> list[Workload]:
    """calls-p0 / calls-p10 / calls-p50: 0%, 10%, 50% divergent calls."""
    n = 48 * scale
    return [
        call_heavy(0, iterations=n, name="calls-p0"),
        call_heavy(10, iterations=n, name="calls-p10"),
        call_heavy(2, iterations=n, name="calls-p50"),
    ]
