"""Scientific array pipelines for the lineage study (§3.4).

[12] observes that real scientific lineage has two exploitable
structures: lineage sets of co-resident values **overlap heavily**, and
the inputs in a set are **clustered** (if input *i* contributes, its
neighbours usually do too).  These kernels exhibit exactly that:

* ``moving_average`` — each output depends on a contiguous window;
* ``stencil_chain`` — repeated 3-point stencils grow contiguous
  regions (strong overlap between neighbouring outputs);
* ``block_select`` — outputs depend on whole blocks chosen by a
  selector input (clustered but non-contiguous unions);
* ``scatter_pick`` — an adversarial kernel whose outputs depend on
  *scattered* individual inputs, included so the roBDD-vs-naive
  comparison has a case where clustering does not help.

Each builder returns the compiled program, its inputs, and a Python
reference function computing the **expected lineage** (set of input
indices) of every output, so the lineage tracer is tested against
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..lang.codegen import CompiledProgram, compile_source
from ..runner import ProgramRunner


@dataclass
class LineageWorkload:
    name: str
    compiled: CompiledProgram
    inputs: dict[int, list[int]]
    #: expected lineage: output position -> set of input indices (chan 0).
    expected_lineage: Callable[[int], set[int]]
    n_outputs: int
    description: str

    def runner(self, max_instructions: int = 20_000_000) -> ProgramRunner:
        return ProgramRunner(
            self.compiled.program,
            inputs={k: list(v) for k, v in self.inputs.items()},
            max_instructions=max_instructions,
        )


def moving_average(n: int = 24, window: int = 4) -> LineageWorkload:
    src = f"""
    const N = {n};
    const WIN = {window};
    global buf[{n}];
    fn main() {{
        var i = 0;
        while (i < N) {{ buf[i] = in(0); i = i + 1; }}
        i = 0;
        while (i + WIN <= N) {{
            var s = 0;
            var j = 0;
            while (j < WIN) {{ s = s + buf[i + j]; j = j + 1; }}
            out(s / WIN, 1);
            i = i + 1;
        }}
    }}
    """
    values = [10 + 3 * i for i in range(n)]
    return LineageWorkload(
        name="moving-average",
        compiled=compile_source(src),
        inputs={0: values},
        expected_lineage=lambda k: set(range(k, k + window)),
        n_outputs=n - window + 1,
        description=f"{window}-wide moving average over {n} inputs",
    )


def stencil_chain(n: int = 20, rounds: int = 3) -> LineageWorkload:
    src = f"""
    const N = {n};
    const R = {rounds};
    global a[{n}];
    global b[{n}];
    fn main() {{
        var i = 0;
        while (i < N) {{ a[i] = in(0); i = i + 1; }}
        var r = 0;
        while (r < R) {{
            i = 0;
            while (i < N) {{
                var left = 0;
                var right = 0;
                if (i > 0) {{ left = a[i - 1]; }}
                if (i < N - 1) {{ right = a[i + 1]; }}
                b[i] = (left + a[i] + right) / 3;
                i = i + 1;
            }}
            i = 0;
            while (i < N) {{ a[i] = b[i]; i = i + 1; }}
            r = r + 1;
        }}
        i = 0;
        while (i < N) {{ out(a[i], 1); i = i + 1; }}
    }}
    """
    values = [(i * 17 + 5) % 100 for i in range(n)]

    def expected(k: int) -> set[int]:
        return set(range(max(0, k - rounds), min(n, k + rounds + 1)))

    return LineageWorkload(
        name="stencil-chain",
        compiled=compile_source(src),
        inputs={0: values},
        expected_lineage=expected,
        n_outputs=n,
        description=f"{rounds} rounds of 3-point stencil over {n} inputs",
    )


def block_select(blocks: int = 4, block_size: int = 8) -> LineageWorkload:
    """Selector inputs (channel 3) pick which input blocks each output
    aggregates — clustered, partially overlapping lineage."""
    n = blocks * block_size
    src = f"""
    const B = {blocks};
    const S = {block_size};
    global buf[{n}];
    fn main() {{
        var i = 0;
        while (i < B * S) {{ buf[i] = in(0); i = i + 1; }}
        var q = 0;
        while (q < B) {{
            var sel = in(3) % B;
            var s = 0;
            var j = 0;
            while (j < S) {{ s = s + buf[sel * S + j]; j = j + 1; }}
            out(s, 1);
            q = q + 1;
        }}
    }}
    """
    values = [i * 2 + 1 for i in range(n)]
    selectors = [(3 * q + 1) % blocks for q in range(blocks)]

    def expected(k: int) -> set[int]:
        sel = selectors[k] % blocks
        return set(range(sel * block_size, (sel + 1) * block_size))

    return LineageWorkload(
        name="block-select",
        compiled=compile_source(src),
        inputs={0: values, 3: selectors},
        expected_lineage=expected,
        n_outputs=blocks,
        description=f"block aggregation with selector inputs ({blocks}x{block_size})",
    )


def scatter_pick(n: int = 32, picks: int = 8, stride: int = 11) -> LineageWorkload:
    """Adversarial: each output depends on scattered single inputs."""
    src = f"""
    const N = {n};
    const P = {picks};
    const STRIDE = {stride};
    global buf[{n}];
    fn main() {{
        var i = 0;
        while (i < N) {{ buf[i] = in(0); i = i + 1; }}
        var k = 0;
        while (k < P) {{
            out(buf[(k * STRIDE) % N], 1);
            k = k + 1;
        }}
    }}
    """
    values = [i + 100 for i in range(n)]
    return LineageWorkload(
        name="scatter-pick",
        compiled=compile_source(src),
        inputs={0: values},
        expected_lineage=lambda k: {(k * stride) % n},
        n_outputs=picks,
        description="scattered single-input dependences (anti-clustering)",
    )


def cumulative_sum(n: int = 200) -> LineageWorkload:
    """Running sums kept resident: output k depends on inputs 0..k.

    This is the regime §3.4 calls out ("lineage sets could be as large
    as thousands of elements"): every resident prefix set overlaps all
    shorter ones, which is where roBDD sharing decisively beats naive
    per-value sets.
    """
    src = f"""
    const N = {n};
    global acc[{n}];
    fn main() {{
        var running = 0;
        var i = 0;
        while (i < N) {{
            running = running + in(0);
            acc[i] = running;
            i = i + 1;
        }}
        i = 0;
        while (i < N) {{ out(acc[i], 1); i = i + 1; }}
    }}
    """
    values = [(i * 13 + 1) % 50 for i in range(n)]
    return LineageWorkload(
        name="cumulative-sum",
        compiled=compile_source(src),
        inputs={0: values},
        expected_lineage=lambda k: set(range(0, k + 1)),
        n_outputs=n,
        description=f"resident prefix sums over {n} inputs (large overlapping sets)",
    )


def lineage_suite() -> list[LineageWorkload]:
    return [
        moving_average(),
        stencil_chain(),
        block_select(),
        scatter_pick(),
        cumulative_sum(),
    ]
