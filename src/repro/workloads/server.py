"""The MySQL-stand-in: a long-running multithreaded request server with
a seeded heap-corruption bug (§2.2's case study).

Architecture (chosen so execution reduction has real structure to
exploit):

* ``main`` (thread 0) spawns ``workers`` worker threads, then reads
  request quadruples ``(worker, op, a, b)`` from input channel 0 and
  deposits them into per-worker mailboxes in global memory (single
  producer / single consumer, no locks between workers);
* each worker spins on its mailbox (flag-style synchronization), and
  processes requests against its own heap-allocated table:

  - ``op 1`` — put: ``tbl[a] = b``        (no bounds check: the bug)
  - ``op 2`` — get: emits ``tbl[a & 7]``
  - ``op 3`` — put+integrity-check: stores, then asserts the
    worker's integrity word — a "malformed request" with ``a == 8``
    overwrites that adjacent word and trips the assert, long after
    start, in exactly one worker;
  - ``op 0`` — shutdown.

Workers allocate their table (8 cells) and integrity word (1 cell)
back-to-back under a short-lived lock, so the bump allocator makes them
adjacent — the same heap-layout assumption real heap-overflow bugs
exploit.

Because workers only interact with ``main`` (mailboxes) and never with
each other, the reducer's relevant-thread analysis can drop every
worker except the failing one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.codegen import CompiledProgram, compile_source
from ..runner import ProgramRunner
from ..util.rng import DeterministicRng

SERVER_TEMPLATE = """
const W = {workers};
const QCAP = {qcap};
const BUSY = {busywork};

global q[{qtotal}];
global qhead[{workers}];
global qtail[{workers}];
global tids[{workers}];

fn worker(wid) {{
    lock(8);
    var tbl = alloc(8);
    var chk = alloc(1);
    unlock(8);
    chk[0] = 777;
    var processed = 0;
    while (1) {{
        while (qtail[wid] == qhead[wid]) {{ }}
        var base = wid * QCAP * 3 + qtail[wid] * 3;
        var op = q[base];
        var a = q[base + 1];
        var b = q[base + 2];
        qtail[wid] = qtail[wid] + 1;
        if (op == 0) {{
            free(tbl);
            free(chk);
            return processed;
        }}
        if (op == 1) {{
            tbl[a] = b;                  // BUG: no bounds check on a
        }}
        if (op == 2) {{
            out(tbl[a & 7], 1);
        }}
        if (op == 3) {{
            tbl[a] = b;                  // BUG: no bounds check on a
            assert(chk[0] == 777);       // integrity word corrupted => fail
        }}
        var j = 0;
        var s = 0;
        while (j < BUSY) {{ s = s + j * b; j = j + 1; }}
        processed = processed + 1;
    }}
}}

fn main() {{
    var i = 0;
    while (i < W) {{
        tids[i] = spawn(worker, i);
        i = i + 1;
    }}
    while (1) {{
        var w = in(0);
        if (w < 0) {{ break; }}
        var op = in(0);
        var a = in(0);
        var b = in(0);
        var base = w * QCAP * 3 + qhead[w] * 3;
        q[base] = op;
        q[base + 1] = a;
        q[base + 2] = b;
        qhead[w] = qhead[w] + 1;
    }}
    i = 0;
    while (i < W) {{
        var stop = i * QCAP * 3 + qhead[i] * 3;
        q[stop] = 0;
        qhead[i] = qhead[i] + 1;
        i = i + 1;
    }}
    i = 0;
    while (i < W) {{ join(tids[i]); i = i + 1; }}
    out(424242, 1);
}}
"""


@dataclass
class ServerScenario:
    compiled: CompiledProgram
    requests: list[tuple[int, int, int, int]]  # (worker, op, a, b)
    workers: int
    #: index (into requests) of the malicious request, -1 if benign run.
    attack_at: int
    #: worker that will fail.
    victim: int

    @property
    def inputs(self) -> dict[int, list[int]]:
        stream: list[int] = []
        for w, op, a, b in self.requests:
            stream.extend((w, op, a, b))
        stream.append(-1)
        return {0: stream}

    def runner(self, max_instructions: int = 30_000_000) -> ProgramRunner:
        return ProgramRunner(
            self.compiled.program, inputs=self.inputs, max_instructions=max_instructions
        )


def build_server(
    workers: int = 3,
    requests: int = 150,
    busywork: int = 12,
    seed: int = 1,
    inject_failure: bool = True,
    failure_position: float = 0.85,
    check_gap: int = 8,
) -> ServerScenario:
    """Generate the server program plus a request schedule.

    With ``inject_failure``, a malformed **put** near
    ``failure_position`` (fraction of the schedule) carries an
    out-of-range index and silently corrupts its worker's integrity
    word; ``check_gap`` requests later, a benign put+check request to
    the same worker trips the assertion — corruption and detection are
    separated, as in real memory bugs, so the traced replay window has
    a genuine dependence chain to expose.
    """
    rng = DeterministicRng(seed)
    qcap = requests + 2  # no wraparound needed
    src = SERVER_TEMPLATE.format(
        workers=workers,
        qcap=qcap,
        qtotal=workers * qcap * 3,
        busywork=busywork,
    )
    reqs: list[tuple[int, int, int, int]] = []
    for i in range(requests):
        w = rng.randint(0, workers - 1)
        kind = rng.randint(1, 10)
        if kind <= 6:
            reqs.append((w, 1, rng.randint(0, 7), rng.randint(0, 999)))
        else:
            reqs.append((w, 2, rng.randint(0, 7), 0))
    attack_at = -1
    victim = -1
    if inject_failure:
        attack_at = min(requests - 1 - check_gap, int(requests * failure_position))
        victim = rng.randint(0, workers - 1)
        # the malformed request: put with index 8 (one past the end)
        reqs[attack_at] = (victim, 1, 8, 0)
        # a benign integrity-checking request, later, to the same worker
        reqs[attack_at + check_gap] = (victim, 3, rng.randint(0, 7), rng.randint(0, 999))
    return ServerScenario(
        compiled=compile_source(src),
        requests=reqs,
        workers=workers,
        attack_at=attack_at,
        victim=victim,
    )
