"""CPU-intensive mini-benchmarks standing in for SPEC 2000 (§2.1).

ONTRAC and the multicore DIFT experiments were evaluated on SPEC
integer programs; what matters for tracing overhead is the *instruction
mix* (ALU-heavy vs memory-heavy vs branchy), so each kernel here
stresses a different mix.  All kernels read a seed/input from channel 0
(so forward-slice-of-input filtering has real work to do) and emit a
checksum on channel 1 (so every run is self-checking).

Sizes are chosen so a full suite run stays in the hundreds of thousands
of interpreted instructions — big enough for rates/ratios to stabilize,
small enough for CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.codegen import CompiledProgram, compile_source
from ..runner import ProgramRunner


@dataclass
class Workload:
    """A compiled benchmark with its canonical inputs."""

    name: str
    compiled: CompiledProgram
    inputs: dict[int, list[int]]
    description: str

    def runner(self, max_instructions: int = 20_000_000) -> ProgramRunner:
        return ProgramRunner(
            self.compiled.program,
            inputs={k: list(v) for k, v in self.inputs.items()},
            max_instructions=max_instructions,
        )


def matmul(n: int = 8) -> Workload:
    """Dense matrix multiply: ALU + regular memory accesses."""
    src = f"""
    const N = {n};
    global a[{n * n}];
    global b[{n * n}];
    global c[{n * n}];
    fn main() {{
        var seed = in(0);
        var i = 0;
        while (i < N * N) {{
            seed = (seed * 1103515245 + 12345) % 65536;
            a[i] = seed % 100;
            seed = (seed * 1103515245 + 12345) % 65536;
            b[i] = seed % 100;
            i = i + 1;
        }}
        var r = 0;
        while (r < N) {{
            var col = 0;
            while (col < N) {{
                var s = 0;
                var k = 0;
                while (k < N) {{
                    s = s + a[r * N + k] * b[k * N + col];
                    k = k + 1;
                }}
                c[r * N + col] = s;
                col = col + 1;
            }}
            r = r + 1;
        }}
        var sum = 0;
        i = 0;
        while (i < N * N) {{ sum = (sum + c[i]) % 1000003; i = i + 1; }}
        out(sum, 1);
    }}
    """
    return Workload("matmul", compile_source(src), {0: [42]}, "dense matrix multiply")


def sort(n: int = 48) -> Workload:
    """Insertion sort: branchy with data-dependent control flow."""
    src = f"""
    const N = {n};
    global arr[{n}];
    fn main() {{
        var seed = in(0);
        var i = 0;
        while (i < N) {{
            seed = (seed * 69069 + 1) % 65536;
            arr[i] = seed % 1000;
            i = i + 1;
        }}
        i = 1;
        while (i < N) {{
            var key = arr[i];
            var j = i - 1;
            while (j >= 0 && arr[j] > key) {{
                arr[j + 1] = arr[j];
                j = j - 1;
            }}
            arr[j + 1] = key;
            i = i + 1;
        }}
        var ok = 1;
        i = 1;
        while (i < N) {{
            if (arr[i - 1] > arr[i]) {{ ok = 0; }}
            i = i + 1;
        }}
        assert(ok);
        out(arr[0], 1);
        out(arr[N - 1], 1);
    }}
    """
    return Workload("sort", compile_source(src), {0: [7]}, "insertion sort (branchy)")


def hashloop(n: int = 96) -> Workload:
    """Stream hashing: input-dependent ALU chain (taint-dense)."""
    src = f"""
    const N = {n};
    fn main() {{
        var h = 5381;
        var i = 0;
        while (i < N) {{
            var c = in(0);
            h = ((h * 33) ^ c) % 16777216;
            i = i + 1;
        }}
        out(h, 1);
    }}
    """
    inputs = {0: [(i * 37 + 11) % 256 for i in range(n)]}
    return Workload("hashloop", compile_source(src), inputs, "input-stream hashing")


def rle(n: int = 80) -> Workload:
    """Run-length encoding: memory traffic + branchy compare loop."""
    src = f"""
    const N = {n};
    global data[{n}];
    global outbuf[{2 * n}];
    fn main() {{
        var seed = in(0);
        var i = 0;
        while (i < N) {{
            seed = (seed * 25173 + 13849) % 65536;
            data[i] = (seed >> 8) % 4;
            i = i + 1;
        }}
        var w = 0;
        i = 0;
        while (i < N) {{
            var v = data[i];
            var run = 1;
            while (i + run < N && data[i + run] == v) {{ run = run + 1; }}
            outbuf[w] = v;
            outbuf[w + 1] = run;
            w = w + 2;
            i = i + run;
        }}
        var check = 0;
        var j = 0;
        while (j < w) {{ check = (check * 31 + outbuf[j]) % 1000003; j = j + 1; }}
        out(w, 1);
        out(check, 1);
    }}
    """
    return Workload("rle", compile_source(src), {0: [3]}, "run-length encoder")


def bfs(width: int = 6) -> Workload:
    """Grid BFS: pointer-chasing style loads + a work queue."""
    n = width * width
    src = f"""
    const W = {width};
    const N = {n};
    global dist[{n}];
    global queue[{n * 2}];
    fn main() {{
        var start = in(0) % N;
        var i = 0;
        while (i < N) {{ dist[i] = 0 - 1; i = i + 1; }}
        var head = 0;
        var tail = 0;
        dist[start] = 0;
        queue[tail] = start;
        tail = tail + 1;
        while (head < tail) {{
            var v = queue[head];
            head = head + 1;
            var r = v / W;
            var c = v % W;
            if (r > 0 && dist[v - W] < 0) {{ dist[v - W] = dist[v] + 1; queue[tail] = v - W; tail = tail + 1; }}
            if (r < W - 1 && dist[v + W] < 0) {{ dist[v + W] = dist[v] + 1; queue[tail] = v + W; tail = tail + 1; }}
            if (c > 0 && dist[v - 1] < 0) {{ dist[v - 1] = dist[v] + 1; queue[tail] = v - 1; tail = tail + 1; }}
            if (c < W - 1 && dist[v + 1] < 0) {{ dist[v + 1] = dist[v] + 1; queue[tail] = v + 1; tail = tail + 1; }}
        }}
        var s = 0;
        i = 0;
        while (i < N) {{ s = s + dist[i]; i = i + 1; }}
        out(s, 1);
    }}
    """
    return Workload("bfs", compile_source(src), {0: [0]}, "grid breadth-first search")


def fsm(n: int = 120) -> Workload:
    """Input-driven finite state machine: unpredictable branches."""
    src = f"""
    const N = {n};
    fn main() {{
        var state = 0;
        var count0 = 0;
        var count1 = 0;
        var count2 = 0;
        var i = 0;
        while (i < N) {{
            var c = in(0) % 3;
            if (state == 0) {{
                if (c == 0) {{ state = 1; count0 = count0 + 1; }}
                else {{ state = 2; }}
            }} else if (state == 1) {{
                if (c == 1) {{ state = 2; count1 = count1 + 1; }}
                else {{ state = 0; }}
            }} else {{
                if (c == 2) {{ state = 0; count2 = count2 + 1; }}
                else {{ state = 1; }}
            }}
            i = i + 1;
        }}
        out(count0 * 10000 + count1 * 100 + count2, 1);
    }}
    """
    inputs = {0: [(i * i * 7 + i) % 97 for i in range(n)]}
    return Workload("fsm", compile_source(src), inputs, "input-driven state machine")


def suite(scale: int = 1) -> list[Workload]:
    """The full SPEC-like suite at a size multiplier."""
    return [
        matmul(8 * scale),
        sort(48 * scale),
        hashloop(96 * scale),
        rle(80 * scale),
        bfs(6 * scale),
        fsm(120 * scale),
    ]
