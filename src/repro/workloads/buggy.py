"""Seeded-bug corpus for the debugging applications (§3.1, §3.2).

Every entry carries both the buggy and the *fixed* source, failing and
passing inputs, and the bug's source line(s), so experiments can score
techniques against ground truth: does the slice / ranking / candidate
set contain the bug line, and how much else?

Categories map to the paper's studies:

* ``value``     — wrong operator/constant/variable; targets for
  slicing-based location (E7 baseline) and value replacement (E8);
* ``omission``  — execution-omission errors (too-strict predicates);
  targets for predicate switching (E7);
* ``atomicity`` / ``overflow`` / ``malformed`` — the three environment
  fault classes of §3.2's fault-avoidance study (E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..lang.codegen import CompiledProgram, compile_source
from ..runner import ProgramRunner
from ..vm.machine import Machine
from ..vm.scheduler import RandomScheduler, Scheduler


@dataclass
class BuggyProgram:
    name: str
    category: str  # "value" | "omission" | "atomicity" | "overflow" | "malformed"
    source: str
    fixed_source: str
    failing_inputs: dict[int, list[int]]
    passing_inputs: dict[int, list[int]]
    #: 1-based source lines of the defect in ``source``.
    bug_lines: set[int]
    #: scheduler that exposes the bug (None = default round-robin).
    scheduler_factory: Callable[[], Scheduler] | None = None
    description: str = ""
    _compiled: CompiledProgram | None = field(default=None, repr=False)
    _fixed: CompiledProgram | None = field(default=None, repr=False)

    @property
    def compiled(self) -> CompiledProgram:
        if self._compiled is None:
            self._compiled = compile_source(self.source)
        return self._compiled

    @property
    def fixed_compiled(self) -> CompiledProgram:
        if self._fixed is None:
            self._fixed = compile_source(self.fixed_source)
        return self._fixed

    def runner(self, failing: bool = True) -> ProgramRunner:
        return ProgramRunner(
            self.compiled.program,
            inputs={
                k: list(v)
                for k, v in (self.failing_inputs if failing else self.passing_inputs).items()
            },
            scheduler_factory=self.scheduler_factory,
            max_instructions=2_000_000,
        )

    def expected_output(self, channel: int = 1) -> list[int]:
        """Oracle: what the *fixed* program emits on the failing inputs."""
        m = Machine(self.fixed_compiled.program)
        for chan, values in self.failing_inputs.items():
            m.io.provide(chan, list(values))
        m.run(max_instructions=2_000_000)
        return m.io.output(channel)


def wrong_operator() -> BuggyProgram:
    buggy = (
        "fn main() {\n"  # 1
        "    var a = in(0);\n"  # 2
        "    var b = in(0);\n"  # 3
        "    var area = a + b;\n"  # 4  BUG: should be a * b
        "    var perimeter = 2 * (a + b);\n"  # 5
        "    out(area, 1);\n"  # 6
        "    out(perimeter, 1);\n"  # 7
        "}\n"
    )
    fixed = buggy.replace("var area = a + b;", "var area = a * b;")
    return BuggyProgram(
        name="wrong-operator",
        category="value",
        source=buggy,
        fixed_source=fixed,
        failing_inputs={0: [6, 7]},
        passing_inputs={0: [2, 2]},  # 2+2 == 2*2: the bug hides
        bug_lines={4},
        description="'+' where '*' was intended",
    )


def wrong_constant() -> BuggyProgram:
    buggy = (
        "fn main() {\n"  # 1
        "    var n = in(0);\n"  # 2
        "    var s = 0;\n"  # 3
        "    var i = 1;\n"  # 4
        "    while (i < n) {\n"  # 5  BUG: should be i <= n
        "        s = s + i;\n"  # 6
        "        i = i + 1;\n"  # 7
        "    }\n"
        "    out(s, 1);\n"  # 9
        "}\n"
    )
    fixed = buggy.replace("while (i < n) {", "while (i <= n) {")
    return BuggyProgram(
        name="wrong-constant",
        category="value",
        source=buggy,
        fixed_source=fixed,
        failing_inputs={0: [5]},
        passing_inputs={0: [0]},
        bug_lines={5},
        description="off-by-one loop bound",
    )


def wrong_variable() -> BuggyProgram:
    buggy = (
        "fn main() {\n"  # 1
        "    var width = in(0);\n"  # 2
        "    var height = in(0);\n"  # 3
        "    var depth = in(0);\n"  # 4
        "    var face = width * height;\n"  # 5
        "    var volume = face * height;\n"  # 6  BUG: should be face * depth
        "    out(face, 1);\n"  # 7
        "    out(volume, 1);\n"  # 8
        "}\n"
    )
    fixed = buggy.replace("var volume = face * height;", "var volume = face * depth;")
    return BuggyProgram(
        name="wrong-variable",
        category="value",
        source=buggy,
        fixed_source=fixed,
        failing_inputs={0: [3, 4, 5]},
        passing_inputs={0: [3, 4, 4]},
        bug_lines={6},
        description="wrong variable used in computation",
    )


def omission_predicate() -> BuggyProgram:
    buggy = (
        "global result;\n"  # 1
        "fn main() {\n"  # 2
        "    var x = in(0);\n"  # 3
        "    result = 10;\n"  # 4
        "    if (x > 100) {\n"  # 5  BUG: should be x > 0
        "        result = x * 2;\n"  # 6
        "    }\n"
        "    out(result, 1);\n"  # 8
        "}\n"
    )
    fixed = buggy.replace("if (x > 100) {", "if (x > 0) {")
    return BuggyProgram(
        name="omission-predicate",
        category="omission",
        source=buggy,
        fixed_source=fixed,
        failing_inputs={0: [7]},
        passing_inputs={0: [200]},
        bug_lines={5},
        description="too-strict predicate omits a needed update",
    )


def omission_init() -> BuggyProgram:
    buggy = (
        "global table[8];\n"  # 1
        "global ready;\n"  # 2
        "fn init_table(base) {\n"  # 3
        "    var i = 0;\n"  # 4
        "    while (i < 8) { table[i] = base + i; i = i + 1; }\n"  # 5
        "    ready = 1;\n"  # 6
        "}\n"
        "fn main() {\n"  # 8
        "    var mode = in(0);\n"  # 9
        "    if (mode == 2) {\n"  # 10  BUG: should be mode >= 1
        "        init_table(100);\n"  # 11
        "    }\n"
        "    out(table[3], 1);\n"  # 13
        "}\n"
    )
    fixed = buggy.replace("if (mode == 2) {", "if (mode >= 1) {")
    return BuggyProgram(
        name="omission-init",
        category="omission",
        source=buggy,
        fixed_source=fixed,
        failing_inputs={0: [1]},
        passing_inputs={0: [2]},
        bug_lines={10},
        description="initialization skipped for a valid mode",
    )


def atomicity_violation() -> BuggyProgram:
    # Two workers do read-modify-write without the lock; under most
    # fine-grained interleavings updates are lost and the final assert
    # fails.  The fixed version takes the lock.
    buggy = (
        "global counter;\n"  # 1
        "fn worker(n) {\n"  # 2
        "    var i = 0;\n"  # 3
        "    while (i < n) {\n"  # 4
        "        var tmp = counter;\n"  # 5   BUG: unprotected read-modify-write
        "        counter = tmp + 1;\n"  # 6   BUG (same violation)
        "        i = i + 1;\n"  # 7
        "    }\n"
        "}\n"
        "fn main() {\n"  # 10
        "    var a = spawn(worker, 20);\n"  # 11
        "    var b = spawn(worker, 20);\n"  # 12
        "    join(a);\n"  # 13
        "    join(b);\n"  # 14
        "    assert(counter == 40);\n"  # 15
        "    out(counter, 1);\n"  # 16
        "}\n"
    )
    fixed = buggy.replace(
        "        var tmp = counter;\n", "        lock(1);\n        var tmp = counter;\n"
    ).replace(
        "        counter = tmp + 1;\n", "        counter = tmp + 1;\n        unlock(1);\n"
    )
    return BuggyProgram(
        name="atomicity-violation",
        category="atomicity",
        source=buggy,
        fixed_source=fixed,
        failing_inputs={},
        passing_inputs={},
        bug_lines={5, 6},
        scheduler_factory=lambda: RandomScheduler(seed=3, min_quantum=1, max_quantum=3),
        description="unprotected read-modify-write loses updates",
    )


def heap_overflow() -> BuggyProgram:
    buggy = (
        "fn main() {\n"  # 1
        "    var n = in(0);\n"  # 2
        "    var buf = alloc(4);\n"  # 3
        "    var guard = alloc(1);\n"  # 4  adjacent to buf
        "    guard[0] = 555;\n"  # 5
        "    var i = 0;\n"  # 6
        "    while (i <= n) {\n"  # 7  BUG: should be i < n (writes buf[4])
        "        buf[i] = i * 7;\n"  # 8
        "        i = i + 1;\n"  # 9
        "    }\n"
        "    assert(guard[0] == 555);\n"  # 11
        "    out(buf[0] + buf[3], 1);\n"  # 12
        "}\n"
    )
    fixed = buggy.replace("while (i <= n) {", "while (i < n) {")
    return BuggyProgram(
        name="heap-overflow",
        category="overflow",
        source=buggy,
        fixed_source=fixed,
        failing_inputs={0: [4]},
        passing_inputs={0: [3]},
        bug_lines={7},
        description="off-by-one heap write corrupts the adjacent block",
    )


def malformed_request() -> BuggyProgram:
    buggy = (
        "fn main() {\n"  # 1
        "    var total = 0;\n"  # 2
        "    while (1) {\n"  # 3
        "        var req = in(0);\n"  # 4
        "        if (req < 0) { break; }\n"  # 5
        "        var parts = in(0);\n"  # 6
        "        total = total + req / parts;\n"  # 7  BUG: no check parts != 0
        "    }\n"
        "    out(total, 1);\n"  # 9
        "}\n"
    )
    fixed = buggy.replace(
        "        total = total + req / parts;\n",
        "        if (parts != 0) { total = total + req / parts; }\n",
    )
    return BuggyProgram(
        name="malformed-request",
        category="malformed",
        source=buggy,
        fixed_source=fixed,
        failing_inputs={0: [10, 2, 30, 0, 40, 4, -1]},  # request 2 is malformed
        passing_inputs={0: [10, 2, 30, 3, -1]},
        bug_lines={7},
        description="unvalidated request field used as divisor",
    )


def corpus() -> list[BuggyProgram]:
    """The full seeded-bug corpus."""
    return [
        wrong_operator(),
        wrong_constant(),
        wrong_variable(),
        omission_predicate(),
        omission_init(),
        atomicity_violation(),
        heap_overflow(),
        malformed_request(),
    ]


def by_category(category: str) -> list[BuggyProgram]:
    return [b for b in corpus() if b.category == category]
