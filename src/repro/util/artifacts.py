"""Run-artifact directory resolution shared by every subsystem that
writes gitignored on-disk artifacts (service flight dumps, the trace
lake).

One policy, three layers of override, strongest first:

1. an explicit path handed to the owning object (``dump_dir=...``,
   ``TraceLake(root=...)``, ``--lake-root``);
2. a per-artifact environment variable (``REPRO_FLIGHTS_DIR``,
   ``REPRO_LAKE_DIR``);
3. ``<cwd>/<name>`` — the historical default the ``.gitignore``
   entries (``flights/``, ``lake/``) cover.

The directory is *not* created here: callers create it lazily on first
write (``os.makedirs(..., exist_ok=True)``) so a disabled feature never
litters the working directory.
"""

from __future__ import annotations

import os

#: artifact name -> environment override knob.
_ENV_KNOBS = {
    "flights": "REPRO_FLIGHTS_DIR",
    "lake": "REPRO_LAKE_DIR",
}


def run_artifact_dir(name: str, explicit: str | None = None) -> str:
    """Resolve the directory for the run-artifact family ``name``.

    ``explicit`` (a caller-supplied path) wins; otherwise the
    per-artifact environment variable; otherwise ``<cwd>/<name>``.
    """
    if explicit:
        return explicit
    env = _ENV_KNOBS.get(name)
    if env:
        override = os.environ.get(env)
        if override:
            return override
    return os.path.join(os.getcwd(), name)
