"""Deterministic random number generation for workload builders.

A tiny linear-congruential generator (Numerical Recipes constants) so
workloads are reproducible across Python versions without depending on
``random``'s implementation details.
"""

from __future__ import annotations


class DeterministicRng:
    """LCG with explicit state; same seed -> same stream, forever."""

    _A = 1664525
    _C = 1013904223
    _M = 1 << 32

    def __init__(self, seed: int = 1):
        self.state = seed & (self._M - 1)

    def next_u32(self) -> int:
        self.state = (self._A * self.state + self._C) % self._M
        return self.state

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] (inclusive)."""
        if hi < lo:
            raise ValueError("empty range")
        return lo + self.next_u32() % (hi - lo + 1)

    def choice(self, items):
        return items[self.next_u32() % len(items)]

    def shuffle(self, items: list) -> list:
        """In-place Fisher-Yates; returns the list for chaining."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_u32() % (i + 1)
            items[i], items[j] = items[j], items[i]
        return items
