"""ASCII table formatting for experiment harness output."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render rows as a fixed-width ASCII table.

    Floats are shown with two decimals; everything else via ``str``.
    """
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
