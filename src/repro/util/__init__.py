"""Shared utilities: deterministic RNG, table formatting, artifact dirs."""

from .artifacts import run_artifact_dir
from .rng import DeterministicRng
from .tables import format_table

__all__ = ["DeterministicRng", "format_table", "run_artifact_dir"]
