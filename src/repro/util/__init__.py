"""Shared utilities: deterministic RNG, table formatting."""

from .rng import DeterministicRng
from .tables import format_table

__all__ = ["DeterministicRng", "format_table"]
