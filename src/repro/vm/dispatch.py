"""Precompiled instruction dispatch — the VM's fast path.

:meth:`~repro.vm.machine.Machine._execute` decodes every instruction on
every dynamic execution: an opcode ``if/elif`` chain (whose early arms
are IntEnum rich comparisons), operand tuple indexing, a fresh
``write_reg`` closure per step, and a cost-table lookup.  For the hot
opcodes all of that is static per *instruction*, so this module
compiles each :class:`~repro.isa.instructions.Instruction` once, at
machine construction, into a closure with the operands, cost, fall-through
pc and branch target already bound.  ``Machine._step`` then dispatches
``table[thread.pc](thread)``.

Only the hot, simple opcodes get closures (ALU, moves, loads/stores,
stack ops, jumps and branches, NOP/ASSERT).  Everything that touches
scheduler state, the heap, I/O or the call stack stays on the
interpreter's slow path — the table entry for those pcs is the bound
``Machine._execute`` itself, so the fallback costs nothing extra.

Bit-identity contract (enforced by ``tests/test_fastpath_differential.py``):
a compiled step performs the same state transitions in the same order
as ``_execute`` — including intervention transforms, occurrence
counting, cycle accrual, telemetry op counts and the exact
``InstrEvent`` tuples hooks observe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..isa.instructions import SP, Instruction, Opcode
from .errors import ProgramFailure
from .events import InstrEvent

if TYPE_CHECKING:
    from .machine import Machine

StepFn = Callable[..., bool]


def _alu_fns(pc: int):
    """Per-pc binary ALU semantics (pc is bound into failure messages)."""

    def div(a: int, b: int) -> int:
        if b == 0:
            raise ProgramFailure("div_zero", f"at pc={pc}")
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q

    def mod(a: int, b: int) -> int:
        if b == 0:
            raise ProgramFailure("div_zero", f"mod at pc={pc}")
        q = abs(a) // abs(b)
        q = q if (a >= 0) == (b >= 0) else -q
        return a - q * b

    def shl(a: int, b: int) -> int:
        if not 0 <= b <= 64:
            raise ProgramFailure("bad_shift", f"shift by {b}")
        return a << b

    def shr(a: int, b: int) -> int:
        if not 0 <= b <= 64:
            raise ProgramFailure("bad_shift", f"shift by {b}")
        return a >> b

    return {
        Opcode.ADD: lambda a, b: a + b,
        Opcode.SUB: lambda a, b: a - b,
        Opcode.MUL: lambda a, b: a * b,
        Opcode.DIV: div,
        Opcode.MOD: mod,
        Opcode.AND: lambda a, b: a & b,
        Opcode.OR: lambda a, b: a | b,
        Opcode.XOR: lambda a, b: a ^ b,
        Opcode.SHL: shl,
        Opcode.SHR: shr,
        Opcode.SEQ: lambda a, b: 1 if a == b else 0,
        Opcode.SNE: lambda a, b: 1 if a != b else 0,
        Opcode.SLT: lambda a, b: 1 if a < b else 0,
        Opcode.SLE: lambda a, b: 1 if a <= b else 0,
        Opcode.SGT: lambda a, b: 1 if a > b else 0,
        Opcode.SGE: lambda a, b: 1 if a >= b else 0,
    }


def _unary_fns():
    return {
        Opcode.NOT: lambda a: 1 if a == 0 else 0,
        Opcode.NEG: lambda a: -a,
        Opcode.MOV: lambda a: a,
    }


def compile_program(m: "Machine") -> list[StepFn]:
    """One step closure per static instruction; complex opcodes fall
    back to the bound slow-path ``m._execute``."""
    return [_compile_instr(m, pc, instr) for pc, instr in enumerate(m.program.code)]


def _compile_instr(m: "Machine", pc: int, instr: Instruction) -> StepFn:
    op = instr.opcode
    ops = instr.operands
    opi = int(op)
    cost = m._cost_table[opi]
    cycles = m.cycles  # mutated in place, never reassigned
    hooks = m.hooks.hooks  # the live subscriber list (same object forever)
    tel = m._tel
    op_counts = m._op_counts if tel else None
    next_pc = pc + 1

    # --- three-register ALU --------------------------------------------
    if op <= Opcode.SGE:
        fn = _alu_fns(pc)[op]
        d, s1, s2 = ops

        def step_alu(thread, _fn=fn):
            regs = thread.regs
            a = regs[s1]
            b = regs[s2]
            r = _fn(a, b)
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
                r = iv.transform_def(instr, occ, r)
            regs[d] = r
            thread.pc = next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(m.seq, thread.tid, pc, instr, ((s1, a), (s2, b)), ((d, r),))
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_alu

    # --- reg/imm ALU and moves ------------------------------------------
    if op in (Opcode.ADDI, Opcode.MULI):
        d, s, imm = ops
        add = op is Opcode.ADDI

        def step_ri(thread):
            regs = thread.regs
            a = regs[s]
            r = a + imm if add else a * imm
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
                r = iv.transform_def(instr, occ, r)
            regs[d] = r
            thread.pc = next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(m.seq, thread.tid, pc, instr, ((s, a),), ((d, r),))
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_ri

    if op in (Opcode.NOT, Opcode.NEG, Opcode.MOV):
        fn = _unary_fns()[op]
        d, s = ops

        def step_un(thread, _fn=fn):
            regs = thread.regs
            a = regs[s]
            r = _fn(a)
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
                r = iv.transform_def(instr, occ, r)
            regs[d] = r
            thread.pc = next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(m.seq, thread.tid, pc, instr, ((s, a),), ((d, r),))
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_un

    if op is Opcode.LI:
        d, imm = ops

        def step_li(thread):
            r = imm
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
                r = iv.transform_def(instr, occ, r)
            thread.regs[d] = r
            thread.pc = next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(m.seq, thread.tid, pc, instr, (), ((d, r),))
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_li

    # --- memory -----------------------------------------------------------
    if op is Opcode.LOAD:
        d, s, off = ops

        def step_load(thread):
            regs = thread.regs
            base = regs[s]
            addr = base + off
            value = m.memory.load(addr)
            r = value
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
                r = iv.transform_def(instr, occ, r)
            regs[d] = r
            thread.pc = next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(
                    m.seq, thread.tid, pc, instr,
                    ((s, base),), ((d, r),), ((addr, value),), (),
                )
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_load

    if op is Opcode.STORE:
        src, base_reg, off = ops

        def step_store(thread):
            regs = thread.regs
            value = regs[src]
            base = regs[base_reg]
            addr = base + off
            m.memory.store(addr, value)
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
            thread.pc = next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(
                    m.seq, thread.tid, pc, instr,
                    ((src, value), (base_reg, base)), (), (), ((addr, value),),
                )
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_store

    if op is Opcode.PUSH:
        (src,) = ops

        def step_push(thread):
            regs = thread.regs
            value = regs[src]
            sp = regs[SP] - 1
            regs[SP] = sp
            m.memory.store(sp, value)
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
            thread.pc = next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(
                    m.seq, thread.tid, pc, instr,
                    ((src, value), (SP, sp + 1)), ((SP, sp),), (), ((sp, value),),
                )
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_push

    if op is Opcode.POP:
        (d,) = ops

        def step_pop(thread):
            regs = thread.regs
            sp = regs[SP]
            value = m.memory.load(sp)
            regs[SP] = sp + 1
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
                value = iv.transform_def(instr, occ, value)
            regs[d] = value
            thread.pc = next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(
                    m.seq, thread.tid, pc, instr,
                    ((SP, sp),), ((d, value), (SP, sp + 1)), ((sp, value),), (),
                )
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_pop

    # --- control -----------------------------------------------------------
    if op is Opcode.JMP:
        target = ops[0]

        def step_jmp(thread):
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
            thread.pc = target
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(m.seq, thread.tid, pc, instr)
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_jmp

    if op is Opcode.BR or op is Opcode.BRZ:
        src, target = ops
        on_nonzero = op is Opcode.BR

        def step_br(thread):
            cond = thread.regs[src]
            natural = (cond != 0) if on_nonzero else (cond == 0)
            taken = natural
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
                taken = iv.branch_outcome(instr, occ, natural)
            thread.pc = target if taken else next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(
                    m.seq, thread.tid, pc, instr, ((src, cond),), (), (), (), taken
                )
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_br

    if op is Opcode.NOP:

        def step_nop(thread):
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
            thread.pc = next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(m.seq, thread.tid, pc, instr)
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_nop

    if op is Opcode.ASSERT:
        (src,) = ops

        def step_assert(thread):
            value = thread.regs[src]
            if value == 0:
                raise ProgramFailure("assert", f"assertion failed at pc={pc}")
            iv = m.intervention
            if iv is not None:
                occ = m._occurrences.get(pc, 0)
            thread.pc = next_pc
            thread.instructions += 1
            cycles.base += cost
            if tel:
                op_counts[opi] += 1
                m._dispatch_hits += 1
            if iv is not None:
                m._occurrences[pc] = occ + 1
            if hooks:
                ev = InstrEvent(m.seq, thread.tid, pc, instr, ((src, value),))
                if tel:
                    m._events_published += 1
                for h in hooks:
                    h.on_instruction(ev)
            m.seq += 1
            return True

        return step_assert

    # Everything touching the heap, scheduler, call stack or I/O stays on
    # the decoded slow path.
    return m._execute
