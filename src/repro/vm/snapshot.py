"""Machine snapshots — the checkpointing primitive.

A :class:`Snapshot` captures the complete *guest* state of a machine
(memory, threads, sync objects, I/O cursors, counters) plus a forked
scheduler, so restoring and re-running reproduces the continuation
exactly.  Hooks and interventions are host-side tools and are **not**
part of a snapshot; the execution-reduction layer re-attaches whatever
tools the replayed region needs.

Snapshots are cheap relative to the executions they skip: cloning is
O(touched state), and `size_cells` is reported so the checkpointing
experiments can account for space the way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .io import IOSystem
from .machine import Machine
from .memory import Memory
from .scheduler import Scheduler
from .sync import Barrier, Mutex
from .threads import ThreadContext


@dataclass
class Snapshot:
    """Deep copy of one machine's guest state."""

    memory: Memory
    io: IOSystem
    threads: list[ThreadContext]
    mutexes: dict[int, Mutex]
    barriers: dict[int, Barrier]
    joiners: dict[int, list[int]]
    scheduler: Scheduler
    seq: int
    cycles_base: int
    cycles_overhead: int
    halted: bool
    occurrences: dict[int, int] = field(default_factory=dict)

    @property
    def size_cells(self) -> int:
        """Guest state size proxy (touched memory cells + registers)."""
        return self.memory.footprint + sum(len(t.regs) for t in self.threads)


def take_snapshot(machine: Machine) -> Snapshot:
    return Snapshot(
        memory=machine.memory.clone(),
        io=machine.io.clone(),
        threads=[t.clone() for t in machine.threads],
        mutexes={k: m.clone() for k, m in machine.mutexes.items()},
        barriers={k: b.clone() for k, b in machine.barriers.items()},
        joiners={k: list(v) for k, v in machine._joiners.items()},
        scheduler=machine.scheduler.fork(),
        seq=machine.seq,
        cycles_base=machine.cycles.base,
        cycles_overhead=machine.cycles.overhead,
        halted=machine.halted,
        occurrences=dict(machine._occurrences),
    )


def restore_snapshot(machine: Machine, snapshot: Snapshot) -> None:
    """Restore guest state in place (hooks/intervention are untouched)."""
    machine.memory = snapshot.memory.clone()
    machine.io = snapshot.io.clone()
    machine.threads = [t.clone() for t in snapshot.threads]
    machine.mutexes = {k: m.clone() for k, m in snapshot.mutexes.items()}
    machine.barriers = {k: b.clone() for k, b in snapshot.barriers.items()}
    machine._joiners = {k: list(v) for k, v in snapshot.joiners.items()}
    machine.scheduler = snapshot.scheduler.fork()
    machine.seq = snapshot.seq
    machine.cycles.base = snapshot.cycles_base
    machine.cycles.overhead = snapshot.cycles_overhead
    machine.halted = snapshot.halted
    machine.failure = None
    machine.schedule_trace = []
    machine._occurrences = dict(snapshot.occurrences)
