"""Deterministic thread schedulers.

The machine is single-stepping and cooperative: after every quantum the
scheduler picks the next runnable thread.  Three policies cover the
reproduction's needs:

* :class:`RoundRobinScheduler` — fixed quantum, rotating order; the
  default for tests.
* :class:`RandomScheduler` — seeded pseudo-random picks and quantum
  jitter; used to explore interleavings (atomicity-violation bugs
  manifest under some seeds and not others, which is exactly the
  non-determinism §2.2 motivates logging with).
* :class:`ScriptedScheduler` — replays an explicit list of
  ``(tid, count)`` segments, the machinery behind deterministic replay
  and execution reduction; diverging from the script raises
  :class:`repro.vm.errors.ReplayDivergenceError`.

All policies are pure functions of their own state — the machine never
consults wall-clock or OS threads, so runs are bit-reproducible.
"""

from __future__ import annotations

import random

from .errors import ReplayDivergenceError


class Scheduler:
    """Scheduling policy interface."""

    def pick(self, runnable: list[int], current: int | None) -> tuple[int, int]:
        """Choose ``(tid, quantum)`` among ``runnable`` (sorted, non-empty)."""
        raise NotImplementedError

    def fork(self) -> "Scheduler":
        """Independent copy with identical future behaviour (snapshots)."""
        raise NotImplementedError


class RoundRobinScheduler(Scheduler):
    """Rotate through runnable threads with a fixed quantum."""

    def __init__(self, quantum: int = 50):
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self._last: int | None = None

    def pick(self, runnable: list[int], current: int | None) -> tuple[int, int]:
        last = self._last if self._last is not None else -1
        after = [t for t in runnable if t > last]
        tid = after[0] if after else runnable[0]
        self._last = tid
        return tid, self.quantum

    def fork(self) -> "RoundRobinScheduler":
        s = RoundRobinScheduler(self.quantum)
        s._last = self._last
        return s


class RandomScheduler(Scheduler):
    """Seeded random thread choice with quantum jitter."""

    def __init__(self, seed: int = 0, min_quantum: int = 10, max_quantum: int = 100):
        if not 1 <= min_quantum <= max_quantum:
            raise ValueError("need 1 <= min_quantum <= max_quantum")
        self.seed = seed
        self.min_quantum = min_quantum
        self.max_quantum = max_quantum
        self._rng = random.Random(seed)

    def pick(self, runnable: list[int], current: int | None) -> tuple[int, int]:
        tid = self._rng.choice(runnable)
        quantum = self._rng.randint(self.min_quantum, self.max_quantum)
        return tid, quantum

    def fork(self) -> "RandomScheduler":
        s = RandomScheduler(self.seed, self.min_quantum, self.max_quantum)
        s._rng.setstate(self._rng.getstate())
        return s


class ScriptedScheduler(Scheduler):
    """Replay an explicit schedule of ``(tid, instruction count)`` segments.

    When the script is exhausted the scheduler falls back to round-robin
    (``tail_quantum``), which execution reduction uses to run a replayed
    region past the end of the recorded window.
    """

    def __init__(self, segments: list[tuple[int, int]], tail_quantum: int = 50):
        self.segments = list(segments)
        self.tail_quantum = tail_quantum
        self._pos = 0
        self._tail = RoundRobinScheduler(tail_quantum)

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self.segments)

    def pick(self, runnable: list[int], current: int | None) -> tuple[int, int]:
        while self._pos < len(self.segments):
            tid, count = self.segments[self._pos]
            self._pos += 1
            if count <= 0:
                continue
            if tid not in runnable:
                raise ReplayDivergenceError(
                    f"replay schedule wants thread {tid} but runnable={runnable}"
                )
            return tid, count
        return self._tail.pick(runnable, current)

    def fork(self) -> "ScriptedScheduler":
        s = ScriptedScheduler(self.segments, self.tail_quantum)
        s._pos = self._pos
        s._tail = self._tail.fork()
        return s
