"""Guest I/O channels — the DIFT taint sources and program outputs.

Channels are numbered; ``in rd, <chan>`` pops the next value from an
input channel (returning :data:`EOF` when exhausted) and
``out rs, <chan>`` appends to an output channel.  The DIFT engine taints
every value produced by ``in``; fault-location compares output channels
against expected output; the server workload models network requests as
an input channel.

Reads are recorded as ``(seq, channel, value)`` so the
checkpointing/logging layer can replay inputs byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

EOF = -1

#: Conventional channel numbers used by the workloads.
STDIN = 0
STDOUT = 1
STDERR = 2
NETWORK = 3


@dataclass
class IOSystem:
    """All input/output channels of one machine."""

    inputs: dict[int, list[int]] = field(default_factory=dict)
    #: read cursor per input channel.
    cursors: dict[int, int] = field(default_factory=dict)
    outputs: dict[int, list[int]] = field(default_factory=dict)
    #: ordered trace of reads: (dynamic seq, channel, value, input index).
    read_log: list[tuple[int, int, int, int]] = field(default_factory=list)

    def provide(self, channel: int, values: list[int]) -> None:
        """Append ``values`` to an input channel before/while running."""
        self.inputs.setdefault(channel, []).extend(values)

    def provide_text(self, channel: int, text: str) -> None:
        """Convenience: one cell per character code."""
        self.provide(channel, [ord(c) for c in text])

    def read(self, channel: int, seq: int) -> tuple[int, int]:
        """Next value from ``channel`` -> (value, input_index).

        ``input_index`` is the global position of the value within the
        channel, the identity the lineage policy tracks; EOF reads get
        index -1.
        """
        data = self.inputs.get(channel)
        cursor = self.cursors.get(channel, 0)
        if data is None or cursor >= len(data):
            self.read_log.append((seq, channel, EOF, -1))
            return EOF, -1
        value = data[cursor]
        self.cursors[channel] = cursor + 1
        self.read_log.append((seq, channel, value, cursor))
        return value, cursor

    def write(self, channel: int, value: int) -> None:
        self.outputs.setdefault(channel, []).append(value)

    def output(self, channel: int = STDOUT) -> list[int]:
        return list(self.outputs.get(channel, []))

    def output_text(self, channel: int = STDOUT) -> str:
        return "".join(chr(v) for v in self.output(channel) if 0 <= v < 0x110000)

    def clone(self) -> "IOSystem":
        return IOSystem(
            inputs={k: list(v) for k, v in self.inputs.items()},
            cursors=dict(self.cursors),
            outputs={k: list(v) for k, v in self.outputs.items()},
            read_log=list(self.read_log),
        )
