"""Exception hierarchy for the virtual machine.

Two families matter to the tools built on top:

* :class:`VMError` — the *simulator* was misused (bad program, replay
  divergence).  These indicate bugs in the caller, never in the guest.
* :class:`ProgramFailure` — the *guest program* failed (assertion,
  division by zero, wild indirect call, explicit ``fail``).  The
  debugging/fault-location applications treat these as the observable
  failures they must explain, so failures carry the faulting thread and
  program counter.
"""

from __future__ import annotations

from dataclasses import dataclass


class VMError(Exception):
    """Host-level error: malformed guest program or harness misuse."""


class ReplayDivergenceError(VMError):
    """A scripted replay asked for a thread that cannot run.

    Raised when an event log is replayed against a program whose
    execution no longer matches the recorded schedule — the execution
    reduction machinery treats this as a hard error.
    """


class DeadlockError(VMError):
    """All live threads are blocked on locks/joins/barriers."""

    def __init__(self, blocked: dict[int, str]):
        self.blocked = blocked
        detail = ", ".join(f"t{tid}: {why}" for tid, why in sorted(blocked.items()))
        super().__init__(f"deadlock: {detail}")


@dataclass(frozen=True)
class FailureInfo:
    """Where and why the guest failed; attached to run results."""

    kind: str  # "assert" | "div_zero" | "bad_icall" | "fail" | "bad_free" | ...
    tid: int
    pc: int
    seq: int  # dynamic instruction count at failure
    message: str = ""

    def __str__(self) -> str:
        return f"{self.kind} at pc={self.pc} (thread {self.tid}, seq {self.seq}): {self.message}"


class ProgramFailure(Exception):
    """The guest program failed; the machine converts this to a
    ``FAILED`` run status carrying :class:`FailureInfo`."""

    def __init__(self, kind: str, message: str = ""):
        super().__init__(f"{kind}: {message}" if message else kind)
        self.kind = kind
        self.message = message


class AttackDetected(ProgramFailure):
    """Raised by DIFT security policies when tainted data reaches a sink.

    Subclasses :class:`ProgramFailure` so the machine halts the guest the
    same way a hardware DIFT trap would, but remains distinguishable so
    harnesses can tell "attack stopped by DIFT" from "program crashed".
    """

    def __init__(self, message: str = "", culprit_pc: int = -1):
        super().__init__("attack_detected", message)
        #: PC-taint payload: the most recent instruction that wrote the
        #: offending value (the paper's root-cause hint), -1 if unknown.
        self.culprit_pc = culprit_pc
