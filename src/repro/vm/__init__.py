"""Virtual machine substrate: interpreter, memory, threads, hooks.

The VM plays the role of the processor + DBT framework the paper's
tools are built on.  See DESIGN.md §2 for the substitution argument.
"""

from .cost import DEFAULT_COSTS, CostModel, CycleCounters
from .errors import (
    AttackDetected,
    DeadlockError,
    FailureInfo,
    ProgramFailure,
    ReplayDivergenceError,
    VMError,
)
from .events import Hook, HookBus, InstrEvent
from .io import EOF, NETWORK, STDERR, STDIN, STDOUT, IOSystem
from .machine import Intervention, Machine, RunResult, RunStatus
from .memory import GLOBAL_BASE, HEAP_BASE, NULL, STACK_BASE, STACK_SIZE, Memory, stack_top
from .scheduler import RandomScheduler, RoundRobinScheduler, Scheduler, ScriptedScheduler
from .snapshot import Snapshot, restore_snapshot, take_snapshot
from .sync import Barrier, Mutex
from .threads import Frame, ThreadContext, ThreadStatus

__all__ = [
    "DEFAULT_COSTS",
    "CostModel",
    "CycleCounters",
    "AttackDetected",
    "DeadlockError",
    "FailureInfo",
    "ProgramFailure",
    "ReplayDivergenceError",
    "VMError",
    "Hook",
    "HookBus",
    "InstrEvent",
    "EOF",
    "NETWORK",
    "STDERR",
    "STDIN",
    "STDOUT",
    "IOSystem",
    "Intervention",
    "Machine",
    "RunResult",
    "RunStatus",
    "GLOBAL_BASE",
    "HEAP_BASE",
    "NULL",
    "STACK_BASE",
    "STACK_SIZE",
    "Memory",
    "stack_top",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "ScriptedScheduler",
    "Snapshot",
    "restore_snapshot",
    "take_snapshot",
    "Barrier",
    "Mutex",
    "Frame",
    "ThreadContext",
    "ThreadStatus",
]
