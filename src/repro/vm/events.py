"""Instrumentation hook bus — the reproduction's stand-in for DBT.

Pin/valgrind-style frameworks let a tool observe every executed
instruction with resolved operand values.  Here the interpreter
publishes one :class:`InstrEvent` per executed guest instruction to
every subscribed :class:`Hook`, carrying the resolved register reads
and writes, memory reads and writes (with addresses), branch outcome,
and call targets — everything any of the paper's tools consume.

All consumers (ONTRAC tracer, DIFT policies, the event logger, the TM
monitor, the race detector) share this one bus, mirroring how the
paper's tools share one DBT substrate.  A hook may also *intervene*
(predicate switching, value replacement) through the machine's
``intervention`` object rather than through the bus, keeping observation
and perturbation separate.
"""

from __future__ import annotations

from ..isa.instructions import Instruction


class InstrEvent:
    """One executed instruction with resolved dataflow.

    ``reg_reads``/``reg_writes`` are tuples of ``(register, value)``;
    ``mem_reads``/``mem_writes`` are tuples of ``(address, value)``.
    ``seq`` is the global dynamic instruction number (monotone across
    threads), the timestamp every tool keys on.
    """

    __slots__ = (
        "seq",
        "tid",
        "pc",
        "instr",
        "reg_reads",
        "reg_writes",
        "mem_reads",
        "mem_writes",
        "taken",
        "callee",
        "alloc",
        "channel",
        "io_value",
        "input_index",
    )

    def __init__(
        self,
        seq: int,
        tid: int,
        pc: int,
        instr: Instruction,
        reg_reads: tuple = (),
        reg_writes: tuple = (),
        mem_reads: tuple = (),
        mem_writes: tuple = (),
        taken: bool | None = None,
        callee: int | None = None,
        alloc: tuple | None = None,
        channel: int | None = None,
        io_value: int | None = None,
        input_index: int = -1,
    ):
        self.seq = seq
        self.tid = tid
        self.pc = pc
        self.instr = instr
        self.reg_reads = reg_reads
        self.reg_writes = reg_writes
        self.mem_reads = mem_reads
        self.mem_writes = mem_writes
        self.taken = taken
        self.callee = callee
        self.alloc = alloc
        self.channel = channel
        self.io_value = io_value
        self.input_index = input_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ev#{self.seq} t{self.tid} pc={self.pc} {self.instr.format()}>"


class Hook:
    """Base class for instrumentation consumers; override what you need.

    ``on_instruction`` is the firehose; the named callbacks fire for the
    corresponding guest operations *in addition to* the instruction
    event, so sparse consumers (the logger, the race detector) don't pay
    for full decoding.
    """

    def on_instruction(self, ev: InstrEvent) -> None: ...

    def on_thread_start(self, tid: int, fid: int, arg: int, parent: int) -> None: ...

    def on_thread_exit(self, tid: int, result: int) -> None: ...

    def on_join(self, tid: int, target: int, seq: int) -> None:
        """Thread ``tid`` completed a join on ``target``."""

    def on_schedule(self, tid: int, seq: int) -> None:
        """A context switch: thread ``tid`` starts running at ``seq``."""

    def on_lock(self, tid: int, lock_id: int, seq: int) -> None: ...

    def on_unlock(self, tid: int, lock_id: int, seq: int) -> None: ...

    def on_barrier(self, tid: int, barrier_id: int, seq: int) -> None:
        """Thread ``tid`` released from barrier ``barrier_id``."""

    def on_input(self, tid: int, channel: int, value: int, index: int, seq: int) -> None: ...

    def on_output(self, tid: int, channel: int, value: int, seq: int) -> None: ...

    def on_alloc(self, tid: int, base: int, size: int, seq: int) -> None: ...

    def on_free(self, tid: int, base: int, seq: int) -> None: ...

    def on_failure(self, info) -> None:
        """The guest failed; ``info`` is a FailureInfo."""

    def on_run_end(self) -> None:
        """The machine's run loop finished (any status), before the
        RunResult is built — batching hooks flush pending work here so
        the result's cycle counters are final."""


class HookBus:
    """Dispatches machine events to subscribed hooks.

    The machine checks :attr:`active` before building event objects, so
    un-instrumented runs (the paper's "native" baseline) pay nothing.
    """

    def __init__(self) -> None:
        self.hooks: list[Hook] = []

    def subscribe(self, hook: Hook) -> Hook:
        self.hooks.append(hook)
        return hook

    def unsubscribe(self, hook: Hook) -> None:
        self.hooks.remove(hook)

    @property
    def active(self) -> bool:
        return bool(self.hooks)

    # Dispatch helpers — inlined names for the interpreter loop.
    def instruction(self, ev: InstrEvent) -> None:
        for h in self.hooks:
            h.on_instruction(ev)

    def thread_start(self, tid: int, fid: int, arg: int, parent: int) -> None:
        for h in self.hooks:
            h.on_thread_start(tid, fid, arg, parent)

    def thread_exit(self, tid: int, result: int) -> None:
        for h in self.hooks:
            h.on_thread_exit(tid, result)

    def join(self, tid: int, target: int, seq: int) -> None:
        for h in self.hooks:
            h.on_join(tid, target, seq)

    def schedule(self, tid: int, seq: int) -> None:
        for h in self.hooks:
            h.on_schedule(tid, seq)

    def lock(self, tid: int, lock_id: int, seq: int) -> None:
        for h in self.hooks:
            h.on_lock(tid, lock_id, seq)

    def unlock(self, tid: int, lock_id: int, seq: int) -> None:
        for h in self.hooks:
            h.on_unlock(tid, lock_id, seq)

    def barrier(self, tid: int, barrier_id: int, seq: int) -> None:
        for h in self.hooks:
            h.on_barrier(tid, barrier_id, seq)

    def input(self, tid: int, channel: int, value: int, index: int, seq: int) -> None:
        for h in self.hooks:
            h.on_input(tid, channel, value, index, seq)

    def output(self, tid: int, channel: int, value: int, seq: int) -> None:
        for h in self.hooks:
            h.on_output(tid, channel, value, seq)

    def alloc(self, tid: int, base: int, size: int, seq: int) -> None:
        for h in self.hooks:
            h.on_alloc(tid, base, size, seq)

    def free(self, tid: int, base: int, seq: int) -> None:
        for h in self.hooks:
            h.on_free(tid, base, seq)

    def failure(self, info) -> None:
        for h in self.hooks:
            h.on_failure(info)

    def run_end(self) -> None:
        for h in self.hooks:
            h.on_run_end()
