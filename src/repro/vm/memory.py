"""Flat guest memory with a heap allocator.

The address space is a sparse map of integer cells (one "word" per
address; unwritten cells read as zero).  Layout::

    0                  null (never allocated)
    GLOBAL_BASE ..     globals (compiler-assigned)
    STACK_BASE ..      per-thread stacks, STACK_SIZE cells each, grow DOWN
    HEAP_BASE ..       heap, bump-allocated, grows UP

Deliberately, there is **no bounds checking on loads and stores**: a
guest that writes past the end of a heap block silently corrupts the
next block, exactly like the C programs the paper instruments.  That is
the substrate for the heap-overflow attack and fault-avoidance
workloads.  ``free`` of a non-block address does trap (like a hardened
allocator), giving failures something to surface on.

The allocator keeps per-block metadata (base -> size) so that
fault-avoidance can re-run with padded allocations and so tests can
assert adjacency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ProgramFailure

NULL = 0
GLOBAL_BASE = 1_024
STACK_BASE = 65_536
STACK_SIZE = 4_096
MAX_THREADS = 64
HEAP_BASE = STACK_BASE + STACK_SIZE * MAX_THREADS  # 327_680


def stack_top(tid: int) -> int:
    """Initial ``sp`` for thread ``tid`` (exclusive top; stack grows down)."""
    if tid >= MAX_THREADS:
        raise ProgramFailure("too_many_threads", f"tid {tid} >= {MAX_THREADS}")
    return STACK_BASE + (tid + 1) * STACK_SIZE


@dataclass
class Memory:
    """Sparse word-addressed memory plus heap allocator state."""

    cells: dict[int, int] = field(default_factory=dict)
    heap_next: int = HEAP_BASE
    #: live allocations: base address -> size in cells.
    allocations: dict[int, int] = field(default_factory=dict)
    #: exact-size free lists: size -> stack of bases (LIFO reuse).
    free_lists: dict[int, list[int]] = field(default_factory=dict)
    #: extra cells added to every allocation (fault-avoidance padding).
    alloc_padding: int = 0
    #: counters for reports.
    total_allocs: int = 0
    total_frees: int = 0

    # -- data access ---------------------------------------------------
    def load(self, addr: int) -> int:
        return self.cells.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        self.cells[addr] = value

    def load_range(self, addr: int, count: int) -> list[int]:
        get = self.cells.get
        return [get(addr + i, 0) for i in range(count)]

    def store_range(self, addr: int, values: list[int]) -> None:
        for i, v in enumerate(values):
            self.cells[addr + i] = v

    # -- heap ----------------------------------------------------------
    def alloc(self, size: int) -> int:
        """Allocate ``size`` cells; returns the base address.

        Reuses an exact-size freed block when available (LIFO), else
        bump-allocates — consecutive fresh allocations are therefore
        adjacent, which the overflow workloads depend on.
        """
        if size <= 0:
            raise ProgramFailure("bad_alloc", f"allocation size {size}")
        size = size + self.alloc_padding
        bucket = self.free_lists.get(size)
        if bucket:
            base = bucket.pop()
        else:
            base = self.heap_next
            self.heap_next += size
        self.allocations[base] = size
        self.total_allocs += 1
        return base

    def free(self, base: int) -> None:
        size = self.allocations.pop(base, None)
        if size is None:
            raise ProgramFailure("bad_free", f"free of non-block address {base}")
        self.free_lists.setdefault(size, []).append(base)
        self.total_frees += 1

    def block_of(self, addr: int) -> tuple[int, int] | None:
        """(base, size) of the live allocation containing ``addr``, if any.

        Linear in live allocations; used by analyses and detectors, not
        by the interpreter hot path.
        """
        for base, size in self.allocations.items():
            if base <= addr < base + size:
                return base, size
        return None

    # -- snapshot support -----------------------------------------------
    def clone(self) -> "Memory":
        m = Memory(
            cells=dict(self.cells),
            heap_next=self.heap_next,
            allocations=dict(self.allocations),
            free_lists={k: list(v) for k, v in self.free_lists.items()},
            alloc_padding=self.alloc_padding,
            total_allocs=self.total_allocs,
            total_frees=self.total_frees,
        )
        return m

    @property
    def footprint(self) -> int:
        """Number of distinct cells ever written (memory usage proxy)."""
        return len(self.cells)
