"""Guest thread contexts.

Each thread has its own register file (registers are per-thread,
caller-save by convention — the compiler saves live temporaries around
calls, so argument/return flows pass through r0..r3 and spills pass
through memory, both visible to DIFT) and a VM-managed return-address
stack.  Keeping return addresses out of guest memory is a deliberate
simplification: the attack workloads use heap function-pointer
corruption (``icall``) as their control-hijack primitive instead of
return-address smashing, exercising the same DIFT detection path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..isa.instructions import NUM_REGS, SP
from .memory import stack_top


class ThreadStatus(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class Frame:
    """One call-stack entry: where to resume in the caller."""

    return_pc: int
    function: str  # callee name, for diagnostics


@dataclass
class ThreadContext:
    tid: int
    pc: int
    regs: list[int]
    frames: list[Frame] = field(default_factory=list)
    status: ThreadStatus = ThreadStatus.READY
    #: human-readable reason while BLOCKED ("lock 3", "join 2", ...).
    blocked_on: str = ""
    #: r0 at thread exit.
    result: int = 0
    #: instructions this thread has executed (for per-thread stats).
    instructions: int = 0

    @classmethod
    def create(cls, tid: int, entry_pc: int, args: tuple[int, ...] = ()) -> "ThreadContext":
        regs = [0] * NUM_REGS
        for i, a in enumerate(args[:4]):
            regs[i] = a
        regs[SP] = stack_top(tid)
        return cls(tid=tid, pc=entry_pc, regs=regs)

    @property
    def runnable(self) -> bool:
        return self.status is ThreadStatus.READY

    @property
    def done(self) -> bool:
        return self.status is ThreadStatus.DONE

    def block(self, reason: str) -> None:
        self.status = ThreadStatus.BLOCKED
        self.blocked_on = reason

    def wake(self) -> None:
        self.status = ThreadStatus.READY
        self.blocked_on = ""

    def clone(self) -> "ThreadContext":
        t = ThreadContext(
            tid=self.tid,
            pc=self.pc,
            regs=list(self.regs),
            frames=[Frame(f.return_pc, f.function) for f in self.frames],
            status=self.status,
            blocked_on=self.blocked_on,
            result=self.result,
            instructions=self.instructions,
        )
        return t
