"""Deterministic cycle cost model.

The paper's headline numbers are *ratios* measured on 2008 hardware
(19x vs 540x tracing slowdown, 48% multicore DIFT overhead, <40x
lineage slowdown).  Re-measuring absolute wall-clock on a Python
interpreter would say nothing about those ratios, so the experiments
report both real wall-clock (via pytest-benchmark) and a deterministic
cycle model: every executed opcode contributes base cycles, and every
piece of tool machinery (instrumentation stubs, dependence-record
writes, log appends, checkpoint copies) adds overhead cycles through
:meth:`repro.vm.machine.Machine.add_overhead`.

The per-event tool costs live with the tools (e.g.
``repro.ontrac.tracer``) — this module only prices the *guest*
instructions.  Costs are loosely modeled on a simple in-order core:
ALU 1, memory 3, divide 12, syscall-ish operations tens of cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import Opcode

DEFAULT_COSTS: dict[Opcode, int] = {
    Opcode.MUL: 3,
    Opcode.MULI: 3,
    Opcode.DIV: 12,
    Opcode.MOD: 12,
    Opcode.LOAD: 3,
    Opcode.STORE: 3,
    Opcode.PUSH: 3,
    Opcode.POP: 3,
    Opcode.ALLOC: 40,
    Opcode.FREE: 20,
    Opcode.CALL: 2,
    Opcode.ICALL: 3,
    Opcode.RET: 2,
    Opcode.IN: 25,
    Opcode.OUT: 25,
    Opcode.SPAWN: 200,
    Opcode.JOIN: 50,
    Opcode.LOCK: 15,
    Opcode.UNLOCK: 15,
    Opcode.BARINIT: 10,
    Opcode.BARWAIT: 20,
}


@dataclass
class CostModel:
    """Maps opcodes to cycle costs; unlisted opcodes cost ``default``."""

    costs: dict[Opcode, int] = field(default_factory=lambda: dict(DEFAULT_COSTS))
    default: int = 1

    def cost(self, opcode: Opcode) -> int:
        return self.costs.get(opcode, self.default)

    def table(self) -> list[int]:
        """Dense opcode-indexed cost array for the interpreter hot path."""
        size = max(int(op) for op in Opcode) + 1
        dense = [self.default] * size
        for op, c in self.costs.items():
            dense[int(op)] = c
        return dense


@dataclass
class CycleCounters:
    """Base vs tool-overhead cycle accounting for one run."""

    base: int = 0
    overhead: int = 0

    @property
    def total(self) -> int:
        return self.base + self.overhead

    @property
    def slowdown(self) -> float:
        """(base + overhead) / base — 1.0 means no tool cost.

        A run that executed nothing but was still charged tool overhead
        has infinite slowdown; only the truly empty run (no base, no
        overhead) is a clean 1.0.
        """
        if self.base == 0:
            return float("inf") if self.overhead > 0 else 1.0
        return self.total / self.base

    def as_dict(self) -> dict[str, int]:
        return {"base": self.base, "overhead": self.overhead, "total": self.total}


#: Semantic opcode classes for telemetry (instructions retired per class).
OPCODE_CLASSES: dict[Opcode, str] = {}
for _op in Opcode:
    if _op <= Opcode.LI:
        OPCODE_CLASSES[_op] = "alu"
    elif _op <= Opcode.POP:
        OPCODE_CLASSES[_op] = "memory"
    elif _op <= Opcode.FREE:
        OPCODE_CLASSES[_op] = "heap"
    elif _op <= Opcode.NOP:
        OPCODE_CLASSES[_op] = "control"
    elif _op <= Opcode.OUT:
        OPCODE_CLASSES[_op] = "io"
    elif _op <= Opcode.BARWAIT:
        OPCODE_CLASSES[_op] = "sync"
    else:
        OPCODE_CLASSES[_op] = "diagnostic"
del _op
