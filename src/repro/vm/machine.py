"""The mini-ISA interpreter (the "processor" under the DBT layer).

Design constraints, in priority order:

1. **Determinism** — two runs with equal programs, inputs and scheduler
   state are bit-identical, including lock-grant order.  Every replay,
   slicing and fault-avoidance technique in this repo leans on that.
2. **Observability** — with hooks subscribed, every executed instruction
   publishes an :class:`repro.vm.events.InstrEvent` with resolved
   register/memory reads and writes.  With no hooks, no event objects
   are built (the "native run" baseline).
3. **Interventions** — predicate switching and value replacement
   (§3.1) perturb execution through a :class:`Intervention` object that
   can flip branch outcomes and rewrite defined values at chosen dynamic
   occurrences, without the tools touching interpreter internals.

Cycle accounting: guest instructions accrue ``cycles.base`` via the
cost model; tools add ``cycles.overhead`` through :meth:`Machine.add_overhead`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .. import fastpath as fastpath_config
from ..isa.instructions import SP, Instruction, Opcode
from ..isa.program import Program
from ..telemetry import NULL_TELEMETRY, Telemetry
from .cost import OPCODE_CLASSES, CostModel, CycleCounters
from .dispatch import compile_program
from .errors import FailureInfo, ProgramFailure, VMError
from .events import HookBus, InstrEvent
from .io import IOSystem
from .memory import Memory
from .scheduler import RoundRobinScheduler, Scheduler
from .sync import Barrier, Mutex
from .threads import Frame, ThreadContext, ThreadStatus


class RunStatus(enum.Enum):
    HALTED = "halted"  # guest executed HALT
    EXITED = "exited"  # every thread returned from its entry function
    FAILED = "failed"  # ProgramFailure (assert, div-zero, attack, ...)
    LIMIT = "limit"  # instruction budget exhausted
    DEADLOCK = "deadlock"  # all live threads blocked


class Intervention:
    """Execution-perturbation interface (predicate switching / value
    replacement).  The default implementation perturbs nothing."""

    def branch_outcome(self, instr: Instruction, occurrence: int, default: bool) -> bool:
        """Return the outcome the branch should take (default = natural)."""
        return default

    def transform_def(self, instr: Instruction, occurrence: int, value: int) -> int:
        """Rewrite the value about to be written to the destination register."""
        return value


@dataclass
class RunResult:
    status: RunStatus
    instructions: int
    cycles: CycleCounters
    failure: FailureInfo | None = None
    #: executed schedule as (tid, instruction count) segments.
    schedule: list[tuple[int, int]] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.status is RunStatus.FAILED


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _trunc_mod(a: int, b: int) -> int:
    return a - _trunc_div(a, b) * b


class Machine:
    """One guest machine: program + memory + threads + I/O + hooks."""

    def __init__(
        self,
        program: Program,
        scheduler: Scheduler | None = None,
        cost_model: CostModel | None = None,
        args: tuple[int, ...] = (),
        telemetry: Telemetry | None = None,
        fastpath: "fastpath_config.FastPathConfig | bool | None" = None,
    ):
        program.validate()
        self.program = program
        self.scheduler = scheduler or RoundRobinScheduler()
        self.cost_model = cost_model or CostModel()
        self._cost_table = self.cost_model.table()
        self.fastpath = fastpath_config.resolve_config(fastpath)
        self.telemetry = telemetry or NULL_TELEMETRY
        # One bool, checked like `hooks.active`: the no-op path costs a
        # single attribute load and never touches the cycle model.
        self._tel = self.telemetry.enabled
        if self._tel:
            self.telemetry.tracer.bind_clock(lambda: self.cycles.total)
            self._op_counts = [0] * len(self._cost_table)
            self._events_published = 0
            self._blocked_attempts = 0
            self._dispatch_hits = 0
        self.memory = Memory()
        self.io = IOSystem()
        self.hooks = HookBus()
        self.intervention: Intervention | None = None
        self.cycles = CycleCounters()
        self.seq = 0  # dynamic instruction counter (monotone, global)
        self.halted = False
        self.failure: FailureInfo | None = None
        self.schedule_trace: list[tuple[int, int]] = []
        self.mutexes: dict[int, Mutex] = {}
        self.barriers: dict[int, Barrier] = {}
        self._joiners: dict[int, list[int]] = {}  # target tid -> waiting tids
        self._occurrences: dict[int, int] = {}  # instr index -> executions
        entry = program.entry_function
        self.threads: list[ThreadContext] = [ThreadContext.create(0, entry.entry, tuple(args))]
        # Fast path: one precompiled step closure per static instruction
        # (see repro.vm.dispatch); None keeps the decoded slow path.
        self._dispatch = compile_program(self) if self.fastpath.vm_dispatch else None

    # -- tool API -------------------------------------------------------
    def add_overhead(self, cycles: int) -> None:
        """Charge tool overhead cycles (instrumentation, tracing, logging)."""
        self.cycles.overhead += cycles

    def mutex(self, lock_id: int) -> Mutex:
        m = self.mutexes.get(lock_id)
        if m is None:
            m = self.mutexes[lock_id] = Mutex(lock_id)
        return m

    def occurrence_of(self, instr_index: int) -> int:
        """How many times instruction ``instr_index`` has executed."""
        return self._occurrences.get(instr_index, 0)

    # -- execution -------------------------------------------------------
    def run(self, max_instructions: int = 10_000_000) -> RunResult:
        """Run until halt/exit/failure/deadlock or the instruction budget."""
        pick = self.scheduler.pick
        threads = self.threads
        status: RunStatus | None = None
        current: int | None = None
        tel = self._tel
        tracer = self.telemetry.tracer
        run_span = tracer.span("vm.run", cat="vm") if tel else None
        while status is None:
            if self.halted:
                status = RunStatus.HALTED
                break
            runnable = [t.tid for t in threads if t.status is ThreadStatus.READY]
            if not runnable:
                if all(t.done for t in threads):
                    status = RunStatus.EXITED
                else:
                    status = RunStatus.DEADLOCK
                break
            tid, quantum = pick(runnable, current)
            current = tid
            thread = threads[tid]
            executed = 0
            seg_start_seq = self.seq
            seg_span = tracer.span(f"t{tid} segment", cat="schedule", tid=tid) if tel else None
            while executed < quantum:
                if not thread.runnable or self.halted:
                    break
                if not self._step(thread):
                    if tel:
                        self._blocked_attempts += 1
                    break  # blocked without progress
                executed += 1
                if self.failure is not None:
                    break
                if self.seq >= max_instructions:
                    break
            if seg_span is not None:
                seg_span.end(instructions=executed)
            if executed:
                self.schedule_trace.append((tid, executed))
                self.hooks.schedule(tid, seg_start_seq)
            if self.failure is not None:
                status = RunStatus.FAILED
            elif self.seq >= max_instructions and not self.halted:
                status = RunStatus.LIMIT
        # Let batching hooks flush before the counters are snapshotted.
        if self.hooks.active:
            self.hooks.run_end()
        result = RunResult(
            status=status,
            instructions=self.seq,
            cycles=self.cycles,
            failure=self.failure,
            schedule=list(self.schedule_trace),
        )
        if tel:
            if run_span is not None:
                run_span.end(instructions=self.seq, status=status.value)
            self._publish_telemetry(result)
        return result

    def _fail(self, thread: ThreadContext, exc: ProgramFailure) -> None:
        info = FailureInfo(
            kind=exc.kind, tid=thread.tid, pc=thread.pc, seq=self.seq, message=exc.message
        )
        self.failure = info
        if self._tel:
            self.telemetry.tracer.instant(
                f"failure: {info.kind}", cat="vm", tid=thread.tid, pc=info.pc, seq=info.seq
            )
        self.hooks.failure(info)

    def _step(self, thread: ThreadContext) -> bool:
        """Execute one instruction of ``thread``.

        Returns False when the thread blocked without completing the
        instruction (LOCK on a held mutex, JOIN on a live thread,
        BARWAIT before the barrier trips) — such attempts consume no
        sequence number and emit no event, so recorded schedules count
        only completed instructions.
        """
        try:
            table = self._dispatch
            if table is not None:
                return table[thread.pc](thread)
            return self._execute(thread)
        except ProgramFailure as exc:
            self._fail(thread, exc)
            return True

    def _execute(self, thread: ThreadContext) -> bool:
        pc = thread.pc
        instr = self.program.code[pc]
        op = instr.opcode
        ops = instr.operands
        regs = thread.regs
        trace = self.hooks.active
        intervention = self.intervention

        reg_reads: tuple = ()
        reg_writes: tuple = ()
        mem_reads: tuple = ()
        mem_writes: tuple = ()
        taken: bool | None = None
        callee: int | None = None
        alloc: tuple | None = None
        channel: int | None = None
        io_value: int | None = None
        input_index = -1
        next_pc = pc + 1

        if intervention is not None:
            occurrence = self._occurrences.get(pc, 0)
        else:
            occurrence = 0

        def write_reg(reg: int, value: int) -> int:
            nonlocal reg_writes
            if intervention is not None:
                value = intervention.transform_def(instr, occurrence, value)
            regs[reg] = value
            if trace:
                reg_writes = ((reg, value),)
            return value

        # --- ALU (three-register) ------------------------------------
        if op <= Opcode.SGE:  # relies on enum declaration order
            a, b = regs[ops[1]], regs[ops[2]]
            if op is Opcode.ADD:
                r = a + b
            elif op is Opcode.SUB:
                r = a - b
            elif op is Opcode.MUL:
                r = a * b
            elif op is Opcode.DIV:
                if b == 0:
                    raise ProgramFailure("div_zero", f"at pc={pc}")
                r = _trunc_div(a, b)
            elif op is Opcode.MOD:
                if b == 0:
                    raise ProgramFailure("div_zero", f"mod at pc={pc}")
                r = _trunc_mod(a, b)
            elif op is Opcode.AND:
                r = a & b
            elif op is Opcode.OR:
                r = a | b
            elif op is Opcode.XOR:
                r = a ^ b
            elif op is Opcode.SHL:
                if not 0 <= b <= 64:
                    raise ProgramFailure("bad_shift", f"shift by {b}")
                r = a << b
            elif op is Opcode.SHR:
                if not 0 <= b <= 64:
                    raise ProgramFailure("bad_shift", f"shift by {b}")
                r = a >> b
            elif op is Opcode.SEQ:
                r = 1 if a == b else 0
            elif op is Opcode.SNE:
                r = 1 if a != b else 0
            elif op is Opcode.SLT:
                r = 1 if a < b else 0
            elif op is Opcode.SLE:
                r = 1 if a <= b else 0
            elif op is Opcode.SGT:
                r = 1 if a > b else 0
            else:  # SGE
                r = 1 if a >= b else 0
            if trace:
                reg_reads = ((ops[1], a), (ops[2], b))
            write_reg(ops[0], r)

        elif op is Opcode.ADDI:
            a = regs[ops[1]]
            if trace:
                reg_reads = ((ops[1], a),)
            write_reg(ops[0], a + ops[2])
        elif op is Opcode.MULI:
            a = regs[ops[1]]
            if trace:
                reg_reads = ((ops[1], a),)
            write_reg(ops[0], a * ops[2])
        elif op is Opcode.NOT:
            a = regs[ops[1]]
            if trace:
                reg_reads = ((ops[1], a),)
            write_reg(ops[0], 1 if a == 0 else 0)
        elif op is Opcode.NEG:
            a = regs[ops[1]]
            if trace:
                reg_reads = ((ops[1], a),)
            write_reg(ops[0], -a)
        elif op is Opcode.MOV:
            a = regs[ops[1]]
            if trace:
                reg_reads = ((ops[1], a),)
            write_reg(ops[0], a)
        elif op is Opcode.LI:
            write_reg(ops[0], ops[1])

        # --- memory ----------------------------------------------------
        elif op is Opcode.LOAD:
            base = regs[ops[1]]
            addr = base + ops[2]
            value = self.memory.load(addr)
            if trace:
                reg_reads = ((ops[1], base),)
                mem_reads = ((addr, value),)
            write_reg(ops[0], value)
        elif op is Opcode.STORE:
            value = regs[ops[0]]
            base = regs[ops[1]]
            addr = base + ops[2]
            self.memory.store(addr, value)
            if trace:
                reg_reads = ((ops[0], value), (ops[1], base))
                mem_writes = ((addr, value),)
        elif op is Opcode.PUSH:
            value = regs[ops[0]]
            sp = regs[SP] - 1
            regs[SP] = sp
            self.memory.store(sp, value)
            if trace:
                reg_reads = ((ops[0], value), (SP, sp + 1))
                reg_writes = ((SP, sp),)
                mem_writes = ((sp, value),)
        elif op is Opcode.POP:
            sp = regs[SP]
            value = self.memory.load(sp)
            regs[SP] = sp + 1
            if intervention is not None:
                value = intervention.transform_def(instr, occurrence, value)
            regs[ops[0]] = value
            if trace:
                reg_reads = ((SP, sp),)
                reg_writes = ((ops[0], value), (SP, sp + 1))
                mem_reads = ((sp, value),)

        # --- heap --------------------------------------------------------
        elif op is Opcode.ALLOC:
            size = regs[ops[1]]
            base = self.memory.alloc(size)
            if trace:
                reg_reads = ((ops[1], size),)
            write_reg(ops[0], base)
            alloc = (base, size)
            self.hooks.alloc(thread.tid, base, size, self.seq)
        elif op is Opcode.FREE:
            base = regs[ops[0]]
            if trace:
                reg_reads = ((ops[0], base),)
            self.memory.free(base)
            self.hooks.free(thread.tid, base, self.seq)

        # --- control ------------------------------------------------------
        elif op is Opcode.JMP:
            next_pc = ops[0]
        elif op is Opcode.BR or op is Opcode.BRZ:
            cond = regs[ops[0]]
            natural = (cond != 0) if op is Opcode.BR else (cond == 0)
            taken = natural
            if intervention is not None:
                taken = intervention.branch_outcome(instr, occurrence, natural)
            if taken:
                next_pc = ops[1]
            if trace:
                reg_reads = ((ops[0], cond),)
        elif op is Opcode.CALL:
            fn = self.program.function_by_id(ops[0])
            assert fn is not None  # validated at link time
            thread.frames.append(Frame(pc + 1, fn.name))
            next_pc = fn.entry
            callee = ops[0]
        elif op is Opcode.ICALL:
            fid = regs[ops[0]]
            if trace:
                reg_reads = ((ops[0], fid),)
            fn = self.program.function_by_id(fid)
            if fn is None:
                # Emit the event first so DIFT policies can attribute the
                # wild target before the machine reports the crash.
                if trace:
                    self._emit(
                        thread, pc, instr, reg_reads, (), (), (), None, None, None, None, None, -1
                    )
                raise ProgramFailure("bad_icall", f"indirect call to invalid target {fid}")
            thread.frames.append(Frame(pc + 1, fn.name))
            next_pc = fn.entry
            callee = fid
        elif op is Opcode.RET:
            if thread.frames:
                next_pc = thread.frames.pop().return_pc
            else:
                thread.status = ThreadStatus.DONE
                thread.result = regs[0]
                self._wake_joiners(thread.tid)
                self.hooks.thread_exit(thread.tid, thread.result)
                next_pc = pc  # unused; thread is done
        elif op is Opcode.HALT:
            self.halted = True
        elif op is Opcode.NOP:
            pass

        # --- I/O --------------------------------------------------------
        elif op is Opcode.IN:
            value, input_index = self.io.read(ops[1], self.seq)
            channel = ops[1]
            io_value = value
            write_reg(ops[0], value)
            self.hooks.input(thread.tid, channel, value, input_index, self.seq)
        elif op is Opcode.OUT:
            value = regs[ops[0]]
            channel = ops[1]
            io_value = value
            self.io.write(channel, value)
            if trace:
                reg_reads = ((ops[0], value),)
            self.hooks.output(thread.tid, channel, value, self.seq)

        # --- threads & sync ------------------------------------------------
        elif op is Opcode.SPAWN:
            arg = regs[ops[2]]
            fn = self.program.function_by_id(ops[1])
            assert fn is not None
            tid = len(self.threads)
            child = ThreadContext.create(tid, fn.entry, (arg,))
            self.threads.append(child)
            if trace:
                reg_reads = ((ops[2], arg),)
            write_reg(ops[0], tid)
            callee = ops[1]
            self.hooks.thread_start(tid, ops[1], arg, thread.tid)
        elif op is Opcode.JOIN:
            target = regs[ops[0]]
            if not 0 <= target < len(self.threads):
                raise ProgramFailure("bad_join", f"join of unknown thread {target}")
            if not self.threads[target].done:
                thread.block(f"join {target}")
                self._joiners.setdefault(target, []).append(thread.tid)
                return False
            if trace:
                reg_reads = ((ops[0], target),)
            self.hooks.join(thread.tid, target, self.seq)
        elif op is Opcode.LOCK:
            lock_id = regs[ops[0]]
            m = self.mutex(lock_id)
            if not m.try_acquire(thread.tid):
                thread.block(f"lock {lock_id}")
                return False
            if trace:
                reg_reads = ((ops[0], lock_id),)
            self.hooks.lock(thread.tid, lock_id, self.seq)
        elif op is Opcode.UNLOCK:
            lock_id = regs[ops[0]]
            m = self.mutex(lock_id)
            woken = m.release(thread.tid)
            if woken is not None:
                self.threads[woken].wake()
            if trace:
                reg_reads = ((ops[0], lock_id),)
            self.hooks.unlock(thread.tid, lock_id, self.seq)
        elif op is Opcode.BARINIT:
            bar_id, parties = regs[ops[0]], regs[ops[1]]
            if parties < 1:
                raise ProgramFailure("bad_barrier", f"barrier with {parties} parties")
            self.barriers[bar_id] = Barrier(bar_id, parties)
            if trace:
                reg_reads = ((ops[0], bar_id), (ops[1], parties))
        elif op is Opcode.BARWAIT:
            bar_id = regs[ops[0]]
            bar = self.barriers.get(bar_id)
            if bar is None:
                raise ProgramFailure("bad_barrier", f"wait on uninitialized barrier {bar_id}")
            if thread.tid in bar.released:
                bar.released.discard(thread.tid)
            else:
                release = bar.arrive(thread.tid)
                if release is None:
                    thread.block(f"barrier {bar_id}")
                    return False
                bar.released.discard(thread.tid)
                for other in release:
                    if other != thread.tid:
                        self.threads[other].wake()
            if trace:
                reg_reads = ((ops[0], bar_id),)
            self.hooks.barrier(thread.tid, bar_id, self.seq)

        # --- diagnostics ---------------------------------------------------
        elif op is Opcode.ASSERT:
            value = regs[ops[0]]
            if trace:
                reg_reads = ((ops[0], value),)
            if value == 0:
                raise ProgramFailure("assert", f"assertion failed at pc={pc}")
        elif op is Opcode.FAIL:
            raise ProgramFailure("fail", f"explicit failure code {ops[0]}")
        else:  # pragma: no cover - exhaustive over OP_TABLE
            raise VMError(f"unhandled opcode {op!r}")

        # --- bookkeeping ---------------------------------------------------
        if not (op is Opcode.RET and thread.status is ThreadStatus.DONE):
            thread.pc = next_pc
        thread.instructions += 1
        self.cycles.base += self._cost_table[op]
        if self._tel:
            self._op_counts[op] += 1
        if intervention is not None:
            self._occurrences[pc] = occurrence + 1
        if trace:
            self._emit(
                thread,
                pc,
                instr,
                reg_reads,
                reg_writes,
                mem_reads,
                mem_writes,
                taken,
                callee,
                alloc,
                channel,
                io_value,
                input_index,
            )
        self.seq += 1
        return True

    def _emit(
        self,
        thread: ThreadContext,
        pc: int,
        instr: Instruction,
        reg_reads,
        reg_writes,
        mem_reads,
        mem_writes,
        taken,
        callee,
        alloc,
        channel,
        io_value,
        input_index,
    ) -> None:
        ev = InstrEvent(
            seq=self.seq,
            tid=thread.tid,
            pc=pc,
            instr=instr,
            reg_reads=reg_reads,
            reg_writes=reg_writes,
            mem_reads=mem_reads,
            mem_writes=mem_writes,
            taken=taken,
            callee=callee,
            alloc=alloc,
            channel=channel,
            io_value=io_value,
            input_index=input_index,
        )
        if self._tel:
            self._events_published += 1
        self.hooks.instruction(ev)

    def _publish_telemetry(self, result: RunResult) -> None:
        """Dump this run's VM metrics into the telemetry registry."""
        reg = self.telemetry.registry
        reg.counter("vm.instructions").inc(self.seq)
        class_totals: dict[str, int] = {}
        for op in Opcode:
            count = self._op_counts[int(op)]
            if count:
                cls = OPCODE_CLASSES[op]
                class_totals[cls] = class_totals.get(cls, 0) + count
        for cls, count in sorted(class_totals.items()):
            reg.counter(f"vm.instructions.{cls}").inc(count)
        reg.counter("vm.events.published").inc(self._events_published)
        reg.counter("fastpath.dispatch_hits").inc(self._dispatch_hits)
        reg.counter("vm.scheduler.segments").inc(len(self.schedule_trace))
        reg.counter("vm.scheduler.blocked_attempts").inc(self._blocked_attempts)
        reg.gauge("vm.threads.total").set(len(self.threads))
        reg.gauge("vm.cycles.base").set(self.cycles.base)
        reg.gauge("vm.cycles.overhead").set(self.cycles.overhead)
        reg.gauge("vm.cycles.total").set(self.cycles.total)
        hist = reg.histogram("vm.scheduler.segment_instructions")
        for _, executed in self.schedule_trace:
            hist.observe(executed)
        for t in self.threads:
            self.telemetry.tracer.name_thread(t.tid, f"guest thread {t.tid}")

    def _wake_joiners(self, tid: int) -> None:
        for waiter in self._joiners.pop(tid, []):
            self.threads[waiter].wake()
