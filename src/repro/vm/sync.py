"""Guest synchronization objects: mutexes and barriers.

Lock/unlock and barrier arrival order is fully deterministic (FIFO
queues), so two runs with the same scheduler produce identical
acquisition orders — the property that makes the checkpoint/replay layer
able to reproduce multithreaded executions from a schedule log alone.

Flag synchronization (one thread spinning on a shared memory cell
another thread sets) intentionally has *no* VM object: it is written in
guest code with plain loads/stores, so the TM monitor's dynamic
synchronization detector has a realistic pattern to discover (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ProgramFailure


@dataclass
class Mutex:
    lock_id: int
    owner: int | None = None
    waiters: list[int] = field(default_factory=list)
    #: total acquisitions, for contention reports.
    acquisitions: int = 0

    def try_acquire(self, tid: int) -> bool:
        if self.owner is None:
            self.owner = tid
            self.acquisitions += 1
            return True
        if self.owner == tid:
            raise ProgramFailure("relock", f"thread {tid} re-locks lock {self.lock_id}")
        if tid not in self.waiters:
            self.waiters.append(tid)
        return False

    def release(self, tid: int) -> int | None:
        """Release; returns the tid to wake (new front waiter), if any."""
        if self.owner != tid:
            raise ProgramFailure(
                "bad_unlock", f"thread {tid} unlocks lock {self.lock_id} owned by {self.owner}"
            )
        self.owner = None
        if self.waiters:
            return self.waiters.pop(0)
        return None

    def clone(self) -> "Mutex":
        return Mutex(self.lock_id, self.owner, list(self.waiters), self.acquisitions)


@dataclass
class Barrier:
    barrier_id: int
    parties: int
    arrived: list[int] = field(default_factory=list)
    #: threads released by the last trip that have not yet passed through.
    released: set[int] = field(default_factory=set)
    generation: int = 0

    def arrive(self, tid: int) -> list[int] | None:
        """Thread arrives; returns the full release list when it trips."""
        if tid in self.released:
            # Passing through after a wake; caller advances the thread.
            self.released.discard(tid)
            return None
        if tid in self.arrived:
            raise ProgramFailure(
                "barrier_reentry", f"thread {tid} re-arrives at barrier {self.barrier_id}"
            )
        self.arrived.append(tid)
        if len(self.arrived) >= self.parties:
            release = list(self.arrived)
            self.arrived = []
            self.generation += 1
            self.released.update(release)
            return release
        return None

    def clone(self) -> "Barrier":
        return Barrier(
            self.barrier_id, self.parties, list(self.arrived), set(self.released), self.generation
        )
