"""MiniC: the small imperative language workloads are written in.

``compile_source`` turns MiniC text into a runnable
:class:`repro.isa.Program` plus symbol/line metadata used by the
debugging applications.
"""

from .codegen import BUILTINS, CompiledProgram, Compiler, compile_program, compile_source
from .errors import CompileError
from .lexer import Token, TokKind, tokenize
from .parser import Parser, parse

__all__ = [
    "BUILTINS",
    "CompiledProgram",
    "Compiler",
    "compile_program",
    "compile_source",
    "CompileError",
    "Token",
    "TokKind",
    "tokenize",
    "Parser",
    "parse",
]
