"""Compile-time errors for the MiniC front end."""

from __future__ import annotations


class CompileError(Exception):
    """Lexing/parsing/semantic error with source position."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        location = f"{line}:{col}: " if line else ""
        super().__init__(location + message)
        self.line = line
        self.col = col
