"""Recursive-descent parser for MiniC.

Grammar (EBNF-ish)::

    module     := (global | const | func)*
    global     := 'global' IDENT ('[' NUMBER ']')? ';'
    const      := 'const' IDENT '=' NUMBER ';'
    func       := 'fn' IDENT '(' [IDENT (',' IDENT)*] ')' block
    block      := '{' stmt* '}'
    stmt       := 'var' IDENT ['=' expr] ';'
                | 'if' '(' expr ')' block ['else' (block | if-stmt)]
                | 'while' '(' expr ')' block
                | 'for' '(' [simple] ';' [expr] ';' [simple] ')' block
                | 'break' ';' | 'continue' ';'
                | 'return' [expr] ';'
                | simple ';'
    simple     := lvalue '=' expr | expr          (assignment or call)
    expr       := precedence climb over:  ||  &&  |  ^  &  == !=
                  < <= > >=  << >>  + -  * / %  unary(- !)  postfix([ ])
    primary    := NUMBER | IDENT | IDENT '(' args ')' | '(' expr ')'

Only statement-position calls and assignments are allowed as ``simple``
statements; anything else at statement position is rejected early, which
catches ``==`` vs ``=`` typos in workloads.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import CompileError
from .lexer import Token, TokKind, tokenize

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.cur.text == text and self.cur.kind in (TokKind.OP, TokKind.KEYWORD)

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise CompileError(
                f"expected {text!r}, got {self.cur.text or 'EOF'!r}", self.cur.line, self.cur.col
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.cur.kind is not TokKind.IDENT:
            raise CompileError(
                f"expected identifier, got {self.cur.text or 'EOF'!r}",
                self.cur.line,
                self.cur.col,
            )
        return self.advance()

    def expect_number(self) -> Token:
        neg = self.accept("-")
        if self.cur.kind is not TokKind.NUMBER:
            raise CompileError(
                f"expected number, got {self.cur.text or 'EOF'!r}", self.cur.line, self.cur.col
            )
        tok = self.advance()
        if neg:
            return Token(tok.kind, "-" + tok.text, -tok.value, tok.line, tok.col)
        return tok

    # -- top level -------------------------------------------------------
    def parse_module(self) -> ast.Module:
        module = ast.Module(line=1)
        while self.cur.kind is not TokKind.EOF:
            if self.check("global"):
                module.globals.append(self.parse_global())
            elif self.check("const"):
                module.consts.append(self.parse_const())
            elif self.check("fn"):
                module.functions.append(self.parse_func())
            else:
                raise CompileError(
                    f"expected 'global', 'const' or 'fn', got {self.cur.text!r}",
                    self.cur.line,
                    self.cur.col,
                )
        return module

    def parse_global(self) -> ast.GlobalDecl:
        line = self.expect("global").line
        name = self.expect_ident().text
        size = 1
        if self.accept("["):
            size = self.expect_number().value
            if size < 1:
                raise CompileError(f"global array {name!r} must have positive size", line)
            self.expect("]")
        self.expect(";")
        return ast.GlobalDecl(line=line, name=name, size=size)

    def parse_const(self) -> ast.ConstDecl:
        line = self.expect("const").line
        name = self.expect_ident().text
        self.expect("=")
        value = self.expect_number().value
        self.expect(";")
        return ast.ConstDecl(line=line, name=name, value=value)

    def parse_func(self) -> ast.FuncDecl:
        line = self.expect("fn").line
        name = self.expect_ident().text
        self.expect("(")
        params: list[str] = []
        if not self.check(")"):
            params.append(self.expect_ident().text)
            while self.accept(","):
                params.append(self.expect_ident().text)
        self.expect(")")
        body = self.parse_block()
        return ast.FuncDecl(line=line, name=name, params=params, body=body)

    # -- statements ----------------------------------------------------------
    def parse_block(self) -> list:
        self.expect("{")
        stmts = []
        while not self.check("}"):
            if self.cur.kind is TokKind.EOF:
                raise CompileError("unterminated block", self.cur.line, self.cur.col)
            stmts.append(self.parse_stmt())
        self.expect("}")
        return stmts

    def parse_stmt(self) -> ast.Stmt:
        tok = self.cur
        if self.check("var"):
            self.advance()
            name = self.expect_ident().text
            init = None
            if self.accept("="):
                init = self.parse_expr()
            self.expect(";")
            return ast.VarDecl(line=tok.line, name=name, init=init)
        if self.check("if"):
            return self.parse_if()
        if self.check("while"):
            self.advance()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            body = self.parse_block()
            return ast.While(line=tok.line, cond=cond, body=body)
        if self.check("for"):
            self.advance()
            self.expect("(")
            init = None if self.check(";") else self.parse_for_init()
            self.expect(";")
            cond = None if self.check(";") else self.parse_expr()
            self.expect(";")
            step = None if self.check(")") else self.parse_simple()
            self.expect(")")
            body = self.parse_block()
            return ast.For(line=tok.line, init=init, cond=cond, step=step, body=body)
        if self.check("break"):
            self.advance()
            self.expect(";")
            return ast.Break(line=tok.line)
        if self.check("continue"):
            self.advance()
            self.expect(";")
            return ast.Continue(line=tok.line)
        if self.check("return"):
            self.advance()
            value = None if self.check(";") else self.parse_expr()
            self.expect(";")
            return ast.Return(line=tok.line, value=value)
        stmt = self.parse_simple()
        self.expect(";")
        return stmt

    def parse_if(self) -> ast.If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_block()
        otherwise: list = []
        if self.accept("else"):
            if self.check("if"):
                otherwise = [self.parse_if()]
            else:
                otherwise = self.parse_block()
        return ast.If(line=tok.line, cond=cond, then=then, otherwise=otherwise)

    def parse_for_init(self) -> ast.Stmt:
        """The init clause of a ``for``: either ``var x = e`` or a simple
        statement (no trailing semicolon either way)."""
        tok = self.cur
        if self.accept("var"):
            name = self.expect_ident().text
            self.expect("=")
            return ast.VarDecl(line=tok.line, name=name, init=self.parse_expr())
        return self.parse_simple()

    def parse_simple(self) -> ast.Stmt:
        """Assignment or expression statement (calls only)."""
        tok = self.cur
        expr = self.parse_expr()
        if self.accept("="):
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise CompileError("invalid assignment target", tok.line, tok.col)
            value = self.parse_expr()
            return ast.Assign(line=tok.line, target=expr, value=value)
        if not isinstance(expr, ast.Call):
            raise CompileError(
                "only calls and assignments may be statements", tok.line, tok.col
            )
        return ast.ExprStmt(line=tok.line, expr=expr)

    # -- expressions ------------------------------------------------------------
    def parse_expr(self, min_prec: int = 1) -> ast.Expr:
        left = self.parse_unary()
        while True:
            op = self.cur.text
            prec = _PRECEDENCE.get(op) if self.cur.kind is TokKind.OP else None
            if prec is None or prec < min_prec:
                return left
            line = self.advance().line
            right = self.parse_expr(prec + 1)
            left = ast.Binary(line=line, op=op, left=left, right=right)

    def parse_unary(self) -> ast.Expr:
        tok = self.cur
        if self.check("-"):
            self.advance()
            return ast.Unary(line=tok.line, op="-", operand=self.parse_unary())
        if self.check("!"):
            self.advance()
            return ast.Unary(line=tok.line, op="!", operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.check("["):
            line = self.advance().line
            index = self.parse_expr()
            self.expect("]")
            expr = ast.Index(line=line, base=expr, index=index)
        return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind is TokKind.NUMBER:
            self.advance()
            return ast.Num(line=tok.line, value=tok.value)
        if tok.kind is TokKind.IDENT:
            self.advance()
            if self.check("("):
                self.advance()
                args = []
                if not self.check(")"):
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return ast.Call(line=tok.line, name=tok.text, args=args)
            return ast.Name(line=tok.line, ident=tok.text)
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise CompileError(f"unexpected token {tok.text or 'EOF'!r}", tok.line, tok.col)


def parse(source: str) -> ast.Module:
    """Parse MiniC source into a :class:`repro.lang.ast_nodes.Module`."""
    return Parser(tokenize(source)).parse_module()
