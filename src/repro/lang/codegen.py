"""MiniC -> mini-ISA code generator.

Conventions (shared with hand-written assembly workloads):

* r0..r3 — argument/return registers (caller writes just before the
  call; r0 carries the return value).  Never live across calls.
* r4..r29 — expression temporaries, allocated stack-wise per
  expression; live temporaries are caller-saved (push/pop) around
  calls, so all inter-procedural dataflow goes through r0..r3 and
  memory — exactly the flows DIFT must see.
* r30 — frame pointer (callee-saved in the prologue/epilogue).
* r31 (sp) — stack pointer; locals live at ``fp - 1 - slot``.

Globals are assigned static addresses from ``GLOBAL_BASE`` upward;
a global *array* name evaluates to its base address (a compile-time
constant), while a global *scalar* name evaluates to its value, so
pointers obtained from ``alloc()`` can be stored in globals and indexed
with ``p[i]``.

Every emitted instruction is stamped with its MiniC source line, which
fault-location reports surface as "statement" identities, mirroring how
the paper maps instruction addresses back to source statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.builder import FunctionBuilder, Label, ProgramBuilder
from ..isa.instructions import Opcode
from ..isa.program import Program
from ..vm.memory import GLOBAL_BASE
from . import ast_nodes as ast
from .errors import CompileError
from .parser import parse

ARG_REGS = (0, 1, 2, 3)
TEMP_FIRST, TEMP_LAST = 4, 29
FP = 30

_BINOPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "==": Opcode.SEQ,
    "!=": Opcode.SNE,
    "<": Opcode.SLT,
    "<=": Opcode.SLE,
    ">": Opcode.SGT,
    ">=": Opcode.SGE,
}

#: builtin name -> (min args, max args)
BUILTINS = {
    "in": (1, 1),
    "out": (2, 2),
    "alloc": (1, 1),
    "free": (1, 1),
    "spawn": (2, 2),
    "join": (1, 1),
    "lock": (1, 1),
    "unlock": (1, 1),
    "barrier_init": (2, 2),
    "barrier_wait": (1, 1),
    "assert": (1, 1),
    "fail": (1, 1),
    "halt": (0, 0),
    "fnid": (1, 1),
    "icall": (1, 2),
}


@dataclass
class CompiledProgram:
    """A linked program plus the front end's symbol information."""

    program: Program
    source: str
    #: global name -> (address, size in cells).
    globals: dict[str, tuple[int, int]]
    consts: dict[str, int]
    #: global instruction index -> MiniC source line.
    line_map: dict[int, int] = field(default_factory=dict)

    def line_of(self, pc: int) -> int:
        """MiniC line that produced instruction ``pc`` (0 if unknown)."""
        return self.line_map.get(pc, 0)

    def pcs_of_line(self, line: int) -> list[int]:
        return [pc for pc, ln in self.line_map.items() if ln == line]

    def global_addr(self, name: str) -> int:
        return self.globals[name][0]


class _FuncCtx:
    """Per-function emission state."""

    def __init__(self, fb: FunctionBuilder, decl: ast.FuncDecl):
        self.fb = fb
        self.decl = decl
        self.slots: dict[str, int] = {}
        self.free_temps = list(range(TEMP_LAST, TEMP_FIRST - 1, -1))
        self.live_temps: list[int] = []
        self.loop_stack: list[tuple[Label, Label]] = []  # (continue, break)
        self.epilogue: Label = fb.label("epilogue")
        self.cur_line = decl.line

    def alloc_temp(self) -> int:
        if not self.free_temps:
            raise CompileError("expression too complex (out of temporaries)", self.cur_line)
        reg = self.free_temps.pop()
        self.live_temps.append(reg)
        return reg

    def free_temp(self, reg: int) -> None:
        self.live_temps.remove(reg)
        self.free_temps.append(reg)

    def slot_of(self, name: str, line: int) -> int:
        try:
            return self.slots[name]
        except KeyError:
            raise CompileError(f"undeclared variable {name!r}", line) from None


class Compiler:
    def __init__(self, module: ast.Module):
        self.module = module
        self.builder = ProgramBuilder()
        self.consts: dict[str, int] = {}
        self.globals: dict[str, tuple[int, int]] = {}
        self.funcs: dict[str, ast.FuncDecl] = {}
        self._collect_symbols()

    # -- symbol collection ------------------------------------------------
    def _collect_symbols(self) -> None:
        addr = GLOBAL_BASE
        names: set[str] = set(BUILTINS)
        for c in self.module.consts:
            if c.name in names:
                raise CompileError(f"duplicate symbol {c.name!r}", c.line)
            names.add(c.name)
            self.consts[c.name] = c.value
        for g in self.module.globals:
            if g.name in names:
                raise CompileError(f"duplicate symbol {g.name!r}", g.line)
            names.add(g.name)
            self.globals[g.name] = (addr, g.size)
            addr += g.size
        for f in self.module.functions:
            if f.name in names:
                raise CompileError(f"duplicate symbol {f.name!r}", f.line)
            names.add(f.name)
            if len(f.params) > len(ARG_REGS):
                raise CompileError(
                    f"function {f.name!r} has more than {len(ARG_REGS)} parameters", f.line
                )
            self.funcs[f.name] = f

    # -- compilation ------------------------------------------------------
    def compile(self, entry: str = "main") -> CompiledProgram:
        if entry not in self.funcs:
            raise CompileError(f"missing entry function {entry!r}")
        for decl in self.module.functions:
            self._compile_func(decl)
        program = self.builder.build(entry=entry)
        line_map = {
            instr.index: int(instr.source) for instr in program.code if instr.source.isdigit()
        }
        return CompiledProgram(
            program=program,
            source="",
            globals=dict(self.globals),
            consts=dict(self.consts),
            line_map=line_map,
        )

    def _compile_func(self, decl: ast.FuncDecl) -> None:
        fb = self.builder.function(decl.name, num_params=len(decl.params))
        ctx = _FuncCtx(fb, decl)
        # Assign slots: params first, then every var declared in the body.
        for p in decl.params:
            if p in ctx.slots:
                raise CompileError(f"duplicate parameter {p!r}", decl.line)
            ctx.slots[p] = len(ctx.slots)
        self._collect_locals(decl.body, ctx)
        frame = len(ctx.slots)
        # Prologue: save fp, establish frame, spill params to their slots.
        self._emit(ctx, Opcode.PUSH, FP)
        self._emit(ctx, Opcode.MOV, FP, 31)
        if frame:
            self._emit(ctx, Opcode.ADDI, 31, 31, -frame)
        for i, p in enumerate(decl.params):
            self._emit(ctx, Opcode.STORE, ARG_REGS[i], FP, -(1 + ctx.slots[p]))
        self._gen_block(decl.body, ctx)
        # Implicit `return 0` + epilogue carry the declaration's line so
        # they are never confused with the body's last statement.
        ctx.cur_line = decl.line
        self._emit(ctx, Opcode.LI, 0, 0)
        fb.place(ctx.epilogue)
        self._emit(ctx, Opcode.MOV, 31, FP)
        self._emit(ctx, Opcode.POP, FP)
        self._emit(ctx, Opcode.RET)
        if ctx.live_temps:  # pragma: no cover - compiler invariant
            raise CompileError(f"temp leak in {decl.name}: {ctx.live_temps}", decl.line)

    def _collect_locals(self, stmts: list, ctx: _FuncCtx) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.VarDecl):
                if stmt.name in ctx.slots:
                    raise CompileError(f"duplicate variable {stmt.name!r}", stmt.line)
                if stmt.name in self.consts or stmt.name in self.globals:
                    raise CompileError(
                        f"local {stmt.name!r} shadows a global/const", stmt.line
                    )
                ctx.slots[stmt.name] = len(ctx.slots)
            elif isinstance(stmt, ast.If):
                self._collect_locals(stmt.then, ctx)
                self._collect_locals(stmt.otherwise, ctx)
            elif isinstance(stmt, ast.While):
                self._collect_locals(stmt.body, ctx)
            elif isinstance(stmt, ast.For):
                if stmt.init is not None:
                    self._collect_locals([stmt.init], ctx)
                self._collect_locals(stmt.body, ctx)

    # -- emission helpers ------------------------------------------------------
    def _emit(self, ctx: _FuncCtx, opcode: Opcode, *operands):
        return ctx.fb.emit(opcode, *operands, source=str(ctx.cur_line))

    # -- statements ----------------------------------------------------------------
    def _gen_block(self, stmts: list, ctx: _FuncCtx) -> None:
        for stmt in stmts:
            self._gen_stmt(stmt, ctx)

    def _gen_stmt(self, stmt: ast.Stmt, ctx: _FuncCtx) -> None:
        ctx.cur_line = stmt.line
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                reg = self._gen_expr(stmt.init, ctx)
                self._emit(ctx, Opcode.STORE, reg, FP, -(1 + ctx.slots[stmt.name]))
                ctx.free_temp(reg)
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(stmt, ctx)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt, ctx)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt, ctx)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt, ctx)
        elif isinstance(stmt, ast.Break):
            if not ctx.loop_stack:
                raise CompileError("break outside loop", stmt.line)
            self._emit(ctx, Opcode.JMP, ctx.loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            if not ctx.loop_stack:
                raise CompileError("continue outside loop", stmt.line)
            self._emit(ctx, Opcode.JMP, ctx.loop_stack[-1][0])
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self._gen_expr(stmt.value, ctx)
                self._emit(ctx, Opcode.MOV, 0, reg)
                ctx.free_temp(reg)
            else:
                self._emit(ctx, Opcode.LI, 0, 0)
            self._emit(ctx, Opcode.JMP, ctx.epilogue)
        elif isinstance(stmt, ast.ExprStmt):
            reg = self._gen_expr(stmt.expr, ctx)
            if reg >= 0:
                ctx.free_temp(reg)
        else:  # pragma: no cover - exhaustive
            raise CompileError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _gen_assign(self, stmt: ast.Assign, ctx: _FuncCtx) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            name = target.ident
            if name in self.consts:
                raise CompileError(f"cannot assign to const {name!r}", stmt.line)
            value = self._gen_expr(stmt.value, ctx)
            if name in ctx.slots:
                self._emit(ctx, Opcode.STORE, value, FP, -(1 + ctx.slots[name]))
            elif name in self.globals:
                addr, size = self.globals[name]
                if size > 1:
                    raise CompileError(
                        f"cannot assign to array {name!r} (index it instead)", stmt.line
                    )
                base = ctx.alloc_temp()
                self._emit(ctx, Opcode.LI, base, addr)
                self._emit(ctx, Opcode.STORE, value, base, 0)
                ctx.free_temp(base)
            else:
                raise CompileError(f"undeclared variable {name!r}", stmt.line)
            ctx.free_temp(value)
        else:  # Index
            base = self._gen_expr(target.base, ctx)
            index = self._gen_expr(target.index, ctx)
            self._emit(ctx, Opcode.ADD, base, base, index)
            ctx.free_temp(index)
            value = self._gen_expr(stmt.value, ctx)
            self._emit(ctx, Opcode.STORE, value, base, 0)
            ctx.free_temp(value)
            ctx.free_temp(base)

    def _gen_if(self, stmt: ast.If, ctx: _FuncCtx) -> None:
        cond = self._gen_expr(stmt.cond, ctx)
        l_else = ctx.fb.label("else")
        l_end = ctx.fb.label("endif")
        self._emit(ctx, Opcode.BRZ, cond, l_else)
        ctx.free_temp(cond)
        self._gen_block(stmt.then, ctx)
        if stmt.otherwise:
            self._emit(ctx, Opcode.JMP, l_end)
            ctx.fb.place(l_else)
            self._gen_block(stmt.otherwise, ctx)
            ctx.fb.place(l_end)
        else:
            ctx.fb.place(l_else)

    def _gen_while(self, stmt: ast.While, ctx: _FuncCtx) -> None:
        l_cond = ctx.fb.label("while_cond")
        l_end = ctx.fb.label("while_end")
        ctx.fb.place(l_cond)
        cond = self._gen_expr(stmt.cond, ctx)
        self._emit(ctx, Opcode.BRZ, cond, l_end)
        ctx.free_temp(cond)
        ctx.loop_stack.append((l_cond, l_end))
        self._gen_block(stmt.body, ctx)
        ctx.loop_stack.pop()
        self._emit(ctx, Opcode.JMP, l_cond)
        ctx.fb.place(l_end)

    def _gen_for(self, stmt: ast.For, ctx: _FuncCtx) -> None:
        if stmt.init is not None:
            self._gen_stmt(stmt.init, ctx)
        l_cond = ctx.fb.label("for_cond")
        l_step = ctx.fb.label("for_step")
        l_end = ctx.fb.label("for_end")
        ctx.fb.place(l_cond)
        if stmt.cond is not None:
            ctx.cur_line = stmt.line
            cond = self._gen_expr(stmt.cond, ctx)
            self._emit(ctx, Opcode.BRZ, cond, l_end)
            ctx.free_temp(cond)
        ctx.loop_stack.append((l_step, l_end))
        self._gen_block(stmt.body, ctx)
        ctx.loop_stack.pop()
        ctx.fb.place(l_step)
        if stmt.step is not None:
            self._gen_stmt(stmt.step, ctx)
        self._emit(ctx, Opcode.JMP, l_cond)
        ctx.fb.place(l_end)

    # -- expressions --------------------------------------------------------------
    def _gen_expr(self, expr: ast.Expr, ctx: _FuncCtx) -> int:
        """Emit code computing ``expr``; returns the temp holding the value
        (-1 for void builtins in statement position)."""
        ctx.cur_line = expr.line or ctx.cur_line
        if isinstance(expr, ast.Num):
            reg = ctx.alloc_temp()
            self._emit(ctx, Opcode.LI, reg, expr.value)
            return reg
        if isinstance(expr, ast.Name):
            return self._gen_name(expr, ctx)
        if isinstance(expr, ast.Unary):
            reg = self._gen_expr(expr.operand, ctx)
            self._emit(ctx, Opcode.NEG if expr.op == "-" else Opcode.NOT, reg, reg)
            return reg
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                return self._gen_shortcircuit(expr, ctx)
            left = self._gen_expr(expr.left, ctx)
            right = self._gen_expr(expr.right, ctx)
            self._emit(ctx, _BINOPS[expr.op], left, left, right)
            ctx.free_temp(right)
            return left
        if isinstance(expr, ast.Index):
            base = self._gen_expr(expr.base, ctx)
            index = self._gen_expr(expr.index, ctx)
            self._emit(ctx, Opcode.ADD, base, base, index)
            ctx.free_temp(index)
            self._emit(ctx, Opcode.LOAD, base, base, 0)
            return base
        if isinstance(expr, ast.Call):
            if expr.name in BUILTINS:
                return self._gen_builtin(expr, ctx)
            return self._gen_call(expr, ctx)
        raise CompileError(f"unhandled expression {type(expr).__name__}", expr.line)

    def _gen_name(self, expr: ast.Name, ctx: _FuncCtx) -> int:
        name = expr.ident
        reg = ctx.alloc_temp()
        if name in self.consts:
            self._emit(ctx, Opcode.LI, reg, self.consts[name])
        elif name in ctx.slots:
            self._emit(ctx, Opcode.LOAD, reg, FP, -(1 + ctx.slots[name]))
        elif name in self.globals:
            addr, size = self.globals[name]
            self._emit(ctx, Opcode.LI, reg, addr)
            if size == 1:  # scalar: load the value; arrays evaluate to base
                self._emit(ctx, Opcode.LOAD, reg, reg, 0)
        elif name in self.funcs:
            raise CompileError(
                f"bare function name {name!r}; use fnid({name}) for a function id", expr.line
            )
        else:
            raise CompileError(f"undeclared variable {name!r}", expr.line)
        return reg

    def _gen_shortcircuit(self, expr: ast.Binary, ctx: _FuncCtx) -> int:
        result = self._gen_expr(expr.left, ctx)
        l_short = ctx.fb.label("sc_short")
        l_end = ctx.fb.label("sc_end")
        if expr.op == "&&":
            self._emit(ctx, Opcode.BRZ, result, l_short)
        else:
            self._emit(ctx, Opcode.BR, result, l_short)
        right = self._gen_expr(expr.right, ctx)
        # Normalize the surviving operand to 0/1.
        self._emit(ctx, Opcode.NOT, right, right)
        self._emit(ctx, Opcode.NOT, result, right)
        ctx.free_temp(right)
        self._emit(ctx, Opcode.JMP, l_end)
        ctx.fb.place(l_short)
        self._emit(ctx, Opcode.LI, result, 0 if expr.op == "&&" else 1)
        ctx.fb.place(l_end)
        return result

    def _gen_call(self, expr: ast.Call, ctx: _FuncCtx) -> int:
        decl = self.funcs.get(expr.name)
        if decl is None:
            raise CompileError(f"call to undefined function {expr.name!r}", expr.line)
        if len(expr.args) != len(decl.params):
            raise CompileError(
                f"{expr.name}() expects {len(decl.params)} argument(s), got {len(expr.args)}",
                expr.line,
            )
        arg_regs = [self._gen_expr(a, ctx) for a in expr.args]
        saved = [t for t in ctx.live_temps if t not in arg_regs]
        for t in saved:
            self._emit(ctx, Opcode.PUSH, t)
        for i, t in enumerate(arg_regs):
            self._emit(ctx, Opcode.MOV, ARG_REGS[i], t)
        for t in arg_regs:
            ctx.free_temp(t)
        self._emit(ctx, Opcode.CALL, expr.name)
        result = ctx.alloc_temp()
        self._emit(ctx, Opcode.MOV, result, 0)
        for t in reversed(saved):
            self._emit(ctx, Opcode.POP, t)
        return result

    def _const_value(self, expr: ast.Expr, what: str) -> int:
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Name) and expr.ident in self.consts:
            return self.consts[expr.ident]
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_value(expr.operand, what)
        raise CompileError(f"{what} must be a compile-time constant", expr.line)

    def _func_name_arg(self, expr: ast.Expr, what: str) -> str:
        if isinstance(expr, ast.Name) and expr.ident in self.funcs:
            return expr.ident
        raise CompileError(f"{what} must name a function", expr.line)

    def _gen_builtin(self, expr: ast.Call, ctx: _FuncCtx) -> int:
        name, args = expr.name, expr.args
        lo, hi = BUILTINS[name]
        if not lo <= len(args) <= hi:
            raise CompileError(
                f"{name}() expects {lo}{'' if lo == hi else f'..{hi}'} argument(s), "
                f"got {len(args)}",
                expr.line,
            )
        if name == "in":
            chan = self._const_value(args[0], "in() channel")
            reg = ctx.alloc_temp()
            self._emit(ctx, Opcode.IN, reg, chan)
            return reg
        if name == "out":
            chan = self._const_value(args[1], "out() channel")
            reg = self._gen_expr(args[0], ctx)
            self._emit(ctx, Opcode.OUT, reg, chan)
            return reg  # out() yields its value, handy for chaining
        if name == "alloc":
            reg = self._gen_expr(args[0], ctx)
            self._emit(ctx, Opcode.ALLOC, reg, reg)
            return reg
        if name == "free":
            reg = self._gen_expr(args[0], ctx)
            self._emit(ctx, Opcode.FREE, reg)
            return reg
        if name == "spawn":
            fname = self._func_name_arg(args[0], "spawn() target")
            if len(self.funcs[fname].params) > 1:
                raise CompileError("spawned functions take at most one parameter", expr.line)
            arg = self._gen_expr(args[1], ctx)
            self._emit(ctx, Opcode.SPAWN, arg, fname, arg)
            return arg  # now holds the child tid
        if name == "join":
            reg = self._gen_expr(args[0], ctx)
            self._emit(ctx, Opcode.JOIN, reg)
            return reg
        if name == "lock":
            reg = self._gen_expr(args[0], ctx)
            self._emit(ctx, Opcode.LOCK, reg)
            return reg
        if name == "unlock":
            reg = self._gen_expr(args[0], ctx)
            self._emit(ctx, Opcode.UNLOCK, reg)
            return reg
        if name == "barrier_init":
            rid = self._gen_expr(args[0], ctx)
            rparties = self._gen_expr(args[1], ctx)
            self._emit(ctx, Opcode.BARINIT, rid, rparties)
            ctx.free_temp(rparties)
            return rid
        if name == "barrier_wait":
            reg = self._gen_expr(args[0], ctx)
            self._emit(ctx, Opcode.BARWAIT, reg)
            return reg
        if name == "assert":
            reg = self._gen_expr(args[0], ctx)
            self._emit(ctx, Opcode.ASSERT, reg)
            return reg
        if name == "fail":
            code = self._const_value(args[0], "fail() code")
            self._emit(ctx, Opcode.FAIL, code)
            reg = ctx.alloc_temp()  # unreachable, but keeps callers uniform
            return reg
        if name == "halt":
            self._emit(ctx, Opcode.HALT)
            reg = ctx.alloc_temp()
            self._emit(ctx, Opcode.LI, reg, 0)
            return reg
        if name == "fnid":
            fname = self._func_name_arg(args[0], "fnid() argument")
            reg = ctx.alloc_temp()
            self._emit(ctx, Opcode.LI, reg, fname)
            return reg
        if name == "icall":
            target = self._gen_expr(args[0], ctx)
            arg = self._gen_expr(args[1], ctx) if len(args) > 1 else None
            saved = [t for t in ctx.live_temps if t != target and t != arg]
            for t in saved:
                self._emit(ctx, Opcode.PUSH, t)
            if arg is not None:
                self._emit(ctx, Opcode.MOV, ARG_REGS[0], arg)
                ctx.free_temp(arg)
            self._emit(ctx, Opcode.ICALL, target)
            self._emit(ctx, Opcode.MOV, target, 0)
            for t in reversed(saved):
                self._emit(ctx, Opcode.POP, t)
            return target
        raise CompileError(f"unhandled builtin {name!r}", expr.line)  # pragma: no cover


def compile_source(source: str, entry: str = "main") -> CompiledProgram:
    """Compile MiniC ``source`` into a linked :class:`CompiledProgram`."""
    module = parse(source)
    compiled = Compiler(module).compile(entry=entry)
    compiled.source = source
    return compiled


def compile_program(source: str, entry: str = "main") -> Program:
    """Convenience wrapper returning just the :class:`Program`."""
    return compile_source(source, entry=entry).program
