"""Abstract syntax tree for MiniC.

Nodes carry their source line so the compiler can stamp each emitted
instruction with a position — fault-location reports then point at
MiniC lines the way the paper's reports point at C statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    line: int = 0


# --- expressions -----------------------------------------------------------
@dataclass
class Num(Node):
    value: int = 0


@dataclass
class Name(Node):
    ident: str = ""


@dataclass
class Unary(Node):
    op: str = ""
    operand: "Expr" = None


@dataclass
class Binary(Node):
    op: str = ""
    left: "Expr" = None
    right: "Expr" = None


@dataclass
class Index(Node):
    """``base[index]`` — a memory load when read, a store target on the
    left of an assignment."""

    base: "Expr" = None
    index: "Expr" = None


@dataclass
class Call(Node):
    """Function call or builtin invocation."""

    name: str = ""
    args: list = field(default_factory=list)


Expr = Num | Name | Unary | Binary | Index | Call


# --- statements --------------------------------------------------------------
@dataclass
class VarDecl(Node):
    name: str = ""
    init: Expr | None = None


@dataclass
class Assign(Node):
    target: Name | Index = None
    value: Expr = None


@dataclass
class If(Node):
    cond: Expr = None
    then: list = field(default_factory=list)
    otherwise: list = field(default_factory=list)


@dataclass
class While(Node):
    cond: Expr = None
    body: list = field(default_factory=list)


@dataclass
class For(Node):
    init: "Stmt | None" = None
    cond: Expr | None = None
    step: "Stmt | None" = None
    body: list = field(default_factory=list)


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Return(Node):
    value: Expr | None = None


@dataclass
class ExprStmt(Node):
    expr: Expr = None


Stmt = VarDecl | Assign | If | While | For | Break | Continue | Return | ExprStmt


# --- top level -----------------------------------------------------------------
@dataclass
class GlobalDecl(Node):
    name: str = ""
    size: int = 1  # 1 = scalar, >1 = array of that many cells


@dataclass
class ConstDecl(Node):
    name: str = ""
    value: int = 0


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: list = field(default_factory=list)
    body: list = field(default_factory=list)


@dataclass
class Module(Node):
    globals: list = field(default_factory=list)
    consts: list = field(default_factory=list)
    functions: list = field(default_factory=list)
