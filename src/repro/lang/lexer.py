"""Tokenizer for MiniC, the small imperative language the workloads are
written in.

MiniC exists because authoring SPEC-like kernels, a multithreaded
server, and seeded-bug programs directly in assembly is unreadable and
error-prone.  The language is deliberately tiny: one word-sized integer
type, globals (scalars and arrays), functions with up to four
parameters, `if`/`while`/`for`, and builtins that map 1:1 onto the ISA's
I/O, heap, thread, and sync instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import CompileError


class TokKind(enum.Enum):
    NUMBER = "number"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"


KEYWORDS = {
    "fn",
    "var",
    "global",
    "const",
    "if",
    "else",
    "while",
    "for",
    "break",
    "continue",
    "return",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
]


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    value: int  # numeric value for NUMBER tokens
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r}, @{self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens (ending with an EOF token)."""
    tokens: list[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line, col)
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            col = (
                len(skipped) - skipped.rfind("\n") if "\n" in skipped else col + len(skipped)
            )
            i = end + 2
            continue
        start_line, start_col = line, col
        if c.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                if j == i + 2:
                    raise CompileError("malformed hex literal", line, col)
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token(TokKind.NUMBER, source[i:j], value, start_line, start_col))
            col += j - i
            i = j
            continue
        if c == "'":
            if i + 2 < n and source[i + 2] == "'":
                tokens.append(
                    Token(TokKind.NUMBER, source[i : i + 3], ord(source[i + 1]), line, col)
                )
                i += 3
                col += 3
                continue
            raise CompileError("malformed character literal", line, col)
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, text, 0, start_line, start_col))
            col += j - i
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokKind.OP, op, 0, start_line, start_col))
                i += len(op)
                col += len(op)
                break
        else:
            raise CompileError(f"unexpected character {c!r}", line, col)
    tokens.append(Token(TokKind.EOF, "", 0, line, col))
    return tokens
