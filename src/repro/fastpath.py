"""Fast-path execution flags.

The paper's whole argument is that tracing can be cheap *without
changing what is traced*: ONTRAC's compression and inference shrink the
stored stream but the dependences it answers queries about are the same
ones the naive tracer would have stored.  This module applies the same
discipline to the reproduction's own hot loops: each flag switches an
implementation strategy, never a semantic.  A run with every flag off
and a run with every flag on must be bit-identical — same modeled
cycles, same dependence graphs, same taint sets — which is exactly what
``tests/test_fastpath_differential.py`` proves.

Flags (all default **on**):

``vm_dispatch``
    Precompile every :class:`~repro.isa.instructions.Instruction` into
    a dispatch-table closure at machine construction, hoisting the
    opcode ``if/elif`` chain, operand decoding and cost lookup out of
    the per-instruction step.
``intern_records``
    Intern :class:`~repro.ontrac.records.DepRecord` templates per
    static instruction and delta-encode the per-instance fields, so the
    tracer stops re-allocating six-field frozen dataclasses for every
    repeated dynamic dependence.
``paged_shadow``
    Back shadow memory with 4 KiB label pages (and a shared notion of
    the all-clear page: absent pages read as untainted) instead of one
    flat per-address dict, so ``clear_range``/``snapshot`` work per
    page instead of per cell.
``packed_store``
    Store dependence records in the columnar packed trace buffer
    (:class:`~repro.ontrac.packed.PackedTraceBuffer`): fixed-width
    array columns appended into a ring of preallocated chunk arrays
    instead of one Python object per record, with the indexed slicing
    engine (:mod:`repro.slicing.engine`) answering queries straight
    off the packed columns.  Subsumes ``intern_records`` when on (no
    record objects exist to intern); turn it off to exercise the
    legacy object-deque store.
``parallel_batch``
    Batch the out-of-process DIFT helper's shared-memory channel
    (:class:`repro.multicore.parallel.ParallelHelperDIFT`): flush
    :func:`parallel_batch_size` messages per ring publish instead of
    one, amortizing the IPC cost.  **Default off** — the unbatched
    channel publishes every message immediately, so nothing about the
    modeled-cycle timelines or the per-message ordering ever depends
    on a host-side batching knob, and bit-identity of the simulated
    helper stays trivially preserved.
``array_kernel``
    Run DIFT propagation through the vectorized batch kernel
    (:class:`repro.dift.kernel.ArrayKernel`): packed 24-byte records
    are decoded with numpy, a conservative location-key fixpoint
    selects the records that can touch taint, and only those replay
    through the per-record reference logic, with the untouched bulk
    accounted in O(1).  Falls back to the pure-python
    :class:`~repro.dift.kernel.ReferenceKernel` when numpy is missing
    or the policy is not array-encodable (see
    :func:`propagation_kernel`).

Resolution order: explicit argument > process-wide override
(:func:`configure` / :func:`overridden`) > environment
(``REPRO_FASTPATH=0`` kills everything; ``REPRO_FASTPATH_VM``,
``REPRO_FASTPATH_ONTRAC``, ``REPRO_FASTPATH_SHADOW``,
``REPRO_FASTPATH_PACKED`` toggle one;
``REPRO_FASTPATH_KERNEL=reference|array`` picks the propagation
kernel and ``REPRO_FASTPATH_KERNEL_BATCH`` the records-per-batch;
``REPRO_FASTPATH_PARALLEL`` opts in to channel batching and
``REPRO_FASTPATH_PARALLEL_BATCH`` sets the messages-per-flush;
``REPRO_FASTPATH_SUMMARIES`` opts in to function-summary DIFT) >
defaults (the implementation flags on, batching and summaries off).

``summaries``
    Function-summary DIFT (:mod:`repro.dift.summaries`): the first
    execution of a CALL-delimited region is distilled into a taint
    transfer summary; later calls with a matching footprint apply it
    in O(footprint) and skip instruction-level propagation, with
    automatic invalidation + bounded re-learning on divergence.
    **Default off** (opt-in like ``parallel_batch``) until proven.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FastPathConfig:
    """Which fast-path implementations to use; see the module docstring."""

    vm_dispatch: bool = True
    intern_records: bool = True
    paged_shadow: bool = True
    #: columnar packed dependence store + indexed slicing engine.
    packed_store: bool = True
    #: batch the parallel helper's shared-memory channel (default off).
    parallel_batch: bool = False
    #: vectorized batch propagation kernel (numpy; auto-falls back).
    array_kernel: bool = True
    #: function-summary DIFT: learn per-call taint transfer functions
    #: and replay them in O(footprint) (default off until proven).
    summaries: bool = False

    @classmethod
    def all_on(cls) -> "FastPathConfig":
        return cls(
            vm_dispatch=True,
            intern_records=True,
            paged_shadow=True,
            packed_store=True,
            parallel_batch=True,
            array_kernel=True,
            summaries=True,
        )

    @classmethod
    def all_off(cls) -> "FastPathConfig":
        return cls(
            vm_dispatch=False,
            intern_records=False,
            paged_shadow=False,
            packed_store=False,
            parallel_batch=False,
            array_kernel=False,
            summaries=False,
        )


def _env_bool(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


def _env_kernel(master: bool) -> bool:
    """``REPRO_FASTPATH_KERNEL=reference|array`` as the array-kernel bool."""
    raw = os.environ.get("REPRO_FASTPATH_KERNEL")
    if raw is None:
        return master
    value = raw.strip().lower()
    if value in ("array", "1", "true", "yes", "on"):
        return master
    if value in ("reference", "0", "false", "no", "off", ""):
        return False
    raise ValueError(
        f"REPRO_FASTPATH_KERNEL={raw!r}: expected 'reference' or 'array'"
    )


def from_env() -> FastPathConfig:
    """Build the config the environment asks for."""
    master = _env_bool("REPRO_FASTPATH", True)
    return FastPathConfig(
        vm_dispatch=_env_bool("REPRO_FASTPATH_VM", master),
        intern_records=_env_bool("REPRO_FASTPATH_ONTRAC", master),
        paged_shadow=_env_bool("REPRO_FASTPATH_SHADOW", master),
        packed_store=_env_bool("REPRO_FASTPATH_PACKED", master),
        # Unlike the implementation flags, batching is opt-in: the master
        # switch can only force it off, never on.
        parallel_batch=master and _env_bool("REPRO_FASTPATH_PARALLEL", False),
        array_kernel=_env_kernel(master),
        # Summaries are opt-in the same way while they prove out.
        summaries=master and _env_bool("REPRO_FASTPATH_SUMMARIES", False),
    )


#: messages per ring flush when ``parallel_batch`` is enabled.
DEFAULT_PARALLEL_BATCH = 256


def parallel_batch_size(explicit: int | None = None) -> int:
    """Resolve the parallel helper's messages-per-flush.

    An explicit positive argument wins; otherwise the ``parallel_batch``
    flag selects between unbatched (1) and the environment's
    ``REPRO_FASTPATH_PARALLEL_BATCH`` (default
    :data:`DEFAULT_PARALLEL_BATCH`).
    """
    if explicit is not None:
        if explicit < 1:
            raise ValueError("batch size must be >= 1")
        return explicit
    if not current().parallel_batch:
        return 1
    raw = os.environ.get("REPRO_FASTPATH_PARALLEL_BATCH")
    if raw is None:
        return DEFAULT_PARALLEL_BATCH
    return max(1, int(raw))


#: records per inline micro-batch when the array kernel is active.
DEFAULT_KERNEL_BATCH = 2048

#: cached numpy availability (None = not probed yet).
_numpy_available: bool | None = None

#: times an array-kernel request fell back to the reference kernel,
#: keyed by reason ("numpy" | "policy"); read by engine telemetry.
kernel_fallbacks: dict[str, int] = {}

_fallback_warned = False


def numpy_available() -> bool:
    """Whether numpy can be imported (probed once, cached)."""
    global _numpy_available
    if _numpy_available is None:
        try:
            import numpy  # noqa: F401
        except ImportError:
            _numpy_available = False
        else:
            _numpy_available = True
    return _numpy_available


def note_kernel_fallback(reason: str, *, explicit: bool) -> None:
    """Count (and, for explicit requests, warn once about) an
    array-kernel request that fell back to the reference kernel."""
    global _fallback_warned
    kernel_fallbacks[reason] = kernel_fallbacks.get(reason, 0) + 1
    if explicit and not _fallback_warned:
        import warnings

        warnings.warn(
            f"array propagation kernel requested but unavailable ({reason}); "
            "falling back to the reference kernel",
            RuntimeWarning,
            stacklevel=3,
        )
        _fallback_warned = True


def propagation_kernel(explicit: str | None = None) -> str:
    """Resolve the propagation kernel name: ``"array"`` or ``"reference"``.

    An explicit name wins, otherwise the ``array_kernel`` config flag
    (``REPRO_FASTPATH_KERNEL=reference|array``, default array).  The
    array kernel additionally requires numpy: when it is missing the
    resolution falls back to ``"reference"``, counted in
    :data:`kernel_fallbacks` — with a one-line warning only when the
    array kernel was *explicitly* requested (argument or environment),
    so the importable-by-default path stays silent.
    """
    if explicit not in (None, "array", "reference"):
        raise ValueError(f"unknown propagation kernel {explicit!r}")
    if explicit == "reference":
        return "reference"
    if explicit is None and not current().array_kernel:
        return "reference"
    if numpy_available():
        return "array"
    asked = explicit == "array" or os.environ.get("REPRO_FASTPATH_KERNEL") is not None
    note_kernel_fallback("numpy", explicit=asked)
    return "reference"


def kernel_batch_size(explicit: int | None = None) -> int:
    """Records per inline micro-batch for the array kernel.

    An explicit positive argument wins, then
    ``REPRO_FASTPATH_KERNEL_BATCH``, then :data:`DEFAULT_KERNEL_BATCH`.
    Purely an implementation knob: any positive value yields
    bit-identical observables (the differential suite proves it).
    """
    if explicit is not None:
        if explicit < 1:
            raise ValueError("kernel batch size must be >= 1")
        return explicit
    raw = os.environ.get("REPRO_FASTPATH_KERNEL_BATCH")
    if raw is None:
        return DEFAULT_KERNEL_BATCH
    return max(1, int(raw))


def service_degrade_enabled(explicit: bool | None = None) -> bool:
    """Resolve the analysis service's degraded-mode policy.

    When on (the default), an overloaded daemon sheds *fidelity* first
    — full tracing falls back to DIFT-only, then logging-only, the
    paper's §2.2 cheap-logging/expensive-replay split — and only sheds
    *jobs* (REJECTED) at the hard capacity wall.  When off, overload
    goes straight to REJECTED with no degraded rung.

    Unlike the implementation flags above this is an admission *policy*,
    not a bit-identity lever, so it lives beside — not inside —
    :class:`FastPathConfig`: an explicit argument wins, otherwise
    ``REPRO_SERVICE_DEGRADE`` decides (default on).
    """
    if explicit is not None:
        return explicit
    return _env_bool("REPRO_SERVICE_DEGRADE", True)


def service_async_enabled(explicit: bool | None = None) -> bool:
    """Resolve the service's asyncio front-door switch.

    When on, ``repro serve`` runs the :mod:`repro.service.aserver`
    event-loop server (coroutine per connection, streamed partial
    results) instead of the thread-per-connection daemon.  Both speak
    the identical frame protocol against the identical pool, so this is
    a deployment-shape lever, not a semantic one: an explicit argument
    (the ``--async`` / ``--sync`` CLI flags) wins, otherwise
    ``REPRO_SERVICE_ASYNC`` decides (default off — the threaded daemon
    remains the conservative default).
    """
    if explicit is not None:
        return explicit
    return _env_bool("REPRO_SERVICE_ASYNC", False)


#: rows per streamed partial frame (slice pcs/lines chunking).
DEFAULT_STREAM_CHUNK_ROWS = 64


def stream_chunk_rows(explicit: int | None = None) -> int:
    """Resolve the streamed-result row-chunk size.

    Bounds how many slice rows ride in one ``partial`` frame.  Purely a
    framing knob — reassembly is chunk-size-independent, so any positive
    value yields byte-identical results.  An explicit positive argument
    wins, then ``REPRO_SERVICE_STREAM_CHUNK``, then
    :data:`DEFAULT_STREAM_CHUNK_ROWS`.
    """
    if explicit is not None:
        if explicit < 1:
            raise ValueError("stream chunk must be >= 1 row")
        return explicit
    raw = os.environ.get("REPRO_SERVICE_STREAM_CHUNK")
    if raw is None:
        return DEFAULT_STREAM_CHUNK_ROWS
    return max(1, int(raw))


def service_observe_enabled(explicit: bool | None = None) -> bool:
    """Resolve the analysis service's observability switch.

    When on (the default), a daemon keeps a flight-recorder ring and a
    metrics sampler running, and honors per-job ``trace`` requests with
    wall-clock spans.  All of it is job-granular host-side bookkeeping —
    nothing touches the modeled cycle counters or the per-record hot
    loops — so like ``service_degrade_enabled`` above it is an
    operational policy, not a bit-identity lever: an explicit argument
    wins, otherwise ``REPRO_SERVICE_OBSERVE`` decides (default on).
    """
    if explicit is not None:
        return explicit
    return _env_bool("REPRO_SERVICE_OBSERVE", True)


def service_lake_enabled(explicit: bool | None = None) -> bool:
    """Resolve the service's trace-lake persistence switch.

    When on, workers spill each traced job's packed dependence stream
    into the trace lake (:mod:`repro.lake`) under the observability
    umbrella, so "the one request that failed" can be sliced and
    diffed post-hoc — even after a crash — without re-executing it.
    Persistence is job-granular I/O outside the modeled machine, so
    like the switches above it is an operational policy: an explicit
    argument wins, otherwise ``REPRO_SERVICE_LAKE`` decides (default
    off — spilling every job costs disk).
    """
    if explicit is not None:
        return explicit
    return _env_bool("REPRO_SERVICE_LAKE", False)


_current: FastPathConfig | None = None


def current() -> FastPathConfig:
    """The active process-wide config."""
    global _current
    if _current is None:
        _current = from_env()
    return _current


def configure(config: FastPathConfig) -> FastPathConfig:
    """Install ``config`` process-wide; returns the previous config."""
    global _current
    previous = current()
    _current = config
    return previous


@contextmanager
def overridden(config: FastPathConfig):
    """Temporarily install ``config`` (the differential tests' lever)."""
    previous = configure(config)
    try:
        yield config
    finally:
        configure(previous)


def resolve(flag: bool | None, name: str) -> bool:
    """Resolve one flag: an explicit bool wins, None falls back to
    the process-wide config's attribute ``name``."""
    if flag is None:
        return getattr(current(), name)
    return flag


def resolve_config(config: "FastPathConfig | bool | None") -> FastPathConfig:
    """Resolve a whole-config override: True/False switch everything,
    None falls back to the process-wide config."""
    if config is None:
        return current()
    if config is True:
        return FastPathConfig.all_on()
    if config is False:
        return FastPathConfig.all_off()
    return config


__all__ = [
    "DEFAULT_KERNEL_BATCH",
    "DEFAULT_PARALLEL_BATCH",
    "DEFAULT_STREAM_CHUNK_ROWS",
    "FastPathConfig",
    "configure",
    "current",
    "from_env",
    "kernel_batch_size",
    "kernel_fallbacks",
    "note_kernel_fallback",
    "numpy_available",
    "overridden",
    "parallel_batch_size",
    "propagation_kernel",
    "replace",
    "resolve",
    "resolve_config",
    "service_async_enabled",
    "service_degrade_enabled",
    "service_lake_enabled",
    "service_observe_enabled",
    "stream_chunk_rows",
]
