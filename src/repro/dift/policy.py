"""Taint policies — the pluggable heart of the DIFT framework.

The paper presents one DIFT framework instantiated three ways:

* a **boolean** taint for attack detection (§3.3, "a zero indicates
  untainted data"),
* a **PC value** taint where each tainted location remembers the most
  recent instruction that wrote it (§3.3, used for root-cause location),
* a **lineage set** taint where each value carries the set of inputs it
  depends on (§3.4, represented with roBDDs).

A :class:`TaintPolicy` defines what a taint label is, how labels join
when an instruction reads several tainted sources, and how a label
transforms as it flows through an instruction.  ``None`` is the
universal "untainted" label; the engine never stores ``None`` in shadow
state, so shadow size == number of tainted locations, which is what the
memory-overhead experiments measure.

The lineage policy lives in :mod:`repro.apps.lineage` with its roBDD
machinery; this module holds the two label-sized policies.
"""

from __future__ import annotations

from ..isa.instructions import Opcode
from ..vm.events import InstrEvent

#: data-movement opcodes: they copy a value without computing a new one,
#: so the PC policy preserves the producer's label through them.
COPY_OPS = frozenset({Opcode.MOV, Opcode.LOAD, Opcode.STORE, Opcode.PUSH, Opcode.POP})


class TaintPolicy:
    """Interface for taint label algebra.

    Labels must be immutable (they are shared freely between shadow
    slots).  ``None`` always means untainted and is handled by the
    engine; ``combine`` and ``through`` only ever see non-None labels.
    """

    #: bytes one shadow label occupies in the modeled implementation
    #: (bool taint: 1 byte/word; PC taint: 4 bytes/word; lineage: varies).
    label_bytes: int = 1

    #: extra cycles the policy's propagation stub costs per instruction
    #: with at least one tainted input (on top of the engine's base cost).
    propagate_cycles: int = 2

    def taint_for_input(self, ev: InstrEvent) -> object | None:
        """Label for a value read by ``in`` (``ev.instr`` is the IN)."""
        raise NotImplementedError

    def combine(self, labels: list) -> object:
        """Join two or more non-None labels."""
        raise NotImplementedError

    def through(self, ev: InstrEvent, label: object) -> object:
        """Transform ``label`` as it flows through instruction ``ev``."""
        return label

    def describe(self, label: object) -> str:
        return repr(label)


class BoolTaintPolicy(TaintPolicy):
    """Classic 1-bit taint: tainted or not (§3.3 baseline)."""

    label_bytes = 1
    propagate_cycles = 2
    TAINTED = True

    def taint_for_input(self, ev: InstrEvent) -> object:
        return self.TAINTED

    def combine(self, labels: list) -> object:
        return self.TAINTED

    def describe(self, label: object) -> str:
        return "tainted"


class PCTaintPolicy(TaintPolicy):
    """Propagate the PC of the most recent writer instead of a boolean.

    "At any instant, the PC value corresponding to a tainted location is
    the PC of the most recent instruction that wrote to the location."
    When an attack trips a sink, the sink's label directly names the
    statement that produced the offending value — the paper's root-cause
    hint.  Costs more shadow space (a PC per word instead of a bit),
    which the multicore helper absorbs in §3.3's design.
    """

    label_bytes = 4
    propagate_cycles = 3

    def taint_for_input(self, ev: InstrEvent) -> object:
        return ev.pc

    def combine(self, labels: list) -> object:
        # Multiple tainted inputs: keep the label of the *latest* writer;
        # `through` immediately replaces it with the current PC anyway.
        return max(labels)

    def through(self, ev: InstrEvent, label: object) -> object:
        # Copies (load/store/mov/...) carry the producer's PC along so
        # the label at a sink names the statement that *created* the
        # offending value, not the final move that delivered it.
        if ev.instr.opcode in COPY_OPS:
            return label
        return ev.pc

    def describe(self, label: object) -> str:
        return f"last-writer pc={label}"
