"""Dynamic information flow tracking: policies, shadow state, engine.

The framework the paper's §3 applications instantiate:
:class:`BoolTaintPolicy` (attack detection), :class:`PCTaintPolicy`
(root-cause location), and the lineage policy in
:mod:`repro.apps.lineage` (data validation).

Propagation runs through a pluggable batch kernel
(:mod:`repro.dift.kernel`): :class:`ReferenceKernel` is the pure-python
per-record logic, :class:`ArrayKernel` the vectorized numpy backend
(default when numpy is importable; ``REPRO_FASTPATH_KERNEL`` selects).
"""

from .engine import DIFTEngine, DIFTStats, SinkRule, TaintAlert
from .kernel import (
    ArrayKernel,
    BatchEffects,
    PropagationKernel,
    RecordStreamCapture,
    ReferenceKernel,
    build_kernel,
    select_kernel,
)
from .policy import BoolTaintPolicy, PCTaintPolicy, TaintPolicy
from .shadow import ArrayLabelStore, PagedLabelStore, ShadowState

__all__ = [
    "DIFTEngine",
    "DIFTStats",
    "SinkRule",
    "TaintAlert",
    "BoolTaintPolicy",
    "PCTaintPolicy",
    "TaintPolicy",
    "ArrayLabelStore",
    "PagedLabelStore",
    "ShadowState",
    "ArrayKernel",
    "BatchEffects",
    "PropagationKernel",
    "RecordStreamCapture",
    "ReferenceKernel",
    "build_kernel",
    "select_kernel",
]
