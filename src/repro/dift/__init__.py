"""Dynamic information flow tracking: policies, shadow state, engine.

The framework the paper's §3 applications instantiate:
:class:`BoolTaintPolicy` (attack detection), :class:`PCTaintPolicy`
(root-cause location), and the lineage policy in
:mod:`repro.apps.lineage` (data validation).
"""

from .engine import DIFTEngine, DIFTStats, SinkRule, TaintAlert
from .policy import BoolTaintPolicy, PCTaintPolicy, TaintPolicy
from .shadow import ShadowState

__all__ = [
    "DIFTEngine",
    "DIFTStats",
    "SinkRule",
    "TaintAlert",
    "BoolTaintPolicy",
    "PCTaintPolicy",
    "TaintPolicy",
    "ShadowState",
]
