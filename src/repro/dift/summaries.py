"""Function-summary DIFT: learn per-call taint transfer functions.

Every consumer so far pays O(instructions) for propagation — each
executed instruction of each call crosses the hook bus and the batch
kernel.  This module lifts ONTRAC's static-block elision to call
granularity (the Sdft idea): the first execution of a CALL-delimited
region is observed record-by-record and distilled into a
:class:`TaintSummary` — the region's *input footprint* (which shadow
locations its propagation read, with the labels it saw), its *output
transfer* (the labels it left behind), its stats/overhead deltas, any
sink trips — and later calls whose concrete footprint matches apply
the summary directly on the shadow store in O(footprint), skipping
instruction-level propagation entirely.

Wire format.  Producers in summary mode cut two zero-weight marker
records into the normal 24-byte stream: ``K_CALL`` (``a=0`` for a
direct CALL, ``a=1`` for an ICALL — never summarized, but its marker
keeps nesting depth balanced) and ``K_RET``.  A CALL's own skip weight
lands *before* its marker (outside the region); a RET's lands inside.
Base kernels treat both markers as no-ops, so a marked stream replays
bit-identically through any kernel.

Validity guards.  A summary is applied only when
(1) the *pre-state guard* holds at region entry: every shadow location
    the learned region read carries exactly the label it carried at
    learn time (locations it wrote before reading are guarded on
    existence only — their prior label never flowed anywhere, but
    existence shapes the peak-locations trajectory), and
(2) the *stream guard* holds: the region's record bytes are identical
    to the learned bytes (addresses, values, thread ids, control path
    and nesting all live in those bytes — a single divergent branch,
    aliased store or changed operand breaks the match).
Polymorphic sites hold a small list of *variants* — one summary per
distinct pre-state footprint.  A call whose footprint matches no
stored variant is an entry miss: it learns an additional variant (up
to ``max_variants``, past which the site is blacklisted), so a site
alternating between two stable taint patterns converges to two
summaries and keeps hitting.  On a stream-guard failure mid-region
the kernel falls back to full propagation of the buffered prefix (the
shadow was never touched while matching, so nothing needs undoing),
drops just the diverged variant, re-learns the region in place, and
blacklists the call site after ``relearn_limit`` byte-divergences so
control-flow-unstable sites cannot thrash.

Sink trips inside a region are part of the summary: recorded alerts
are replayed with re-based ``seq``s, and a summary that *raised*
``AttackDetected`` stores the truncated region and re-raises at the
same replayed record index (the producer flushes right after
raise-capable sinks, so the raise escapes the same instruction's
dispatch as the inline reference).

Regions containing ALLOC or SPAWN records are never summarized
(``clear_range`` and cross-thread seeding have effects outside the
byte-determined footprint); their sites are blacklisted on first
sight and their inner calls summarize independently.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

from ..vm.errors import AttackDetected
from .engine import TaintAlert
from .kernel import (
    BatchEffects,
    K_ALLOC,
    K_CALL,
    K_GENERIC,
    K_LOAD,
    K_RET,
    K_SINK,
    K_SKIP,
    K_SPAWN,
    K_STORE,
    PropagationKernel,
    RECORD,
    RECORD_SIZE,
)
from .policy import BoolTaintPolicy, PCTaintPolicy, TaintPolicy

#: byte-divergence invalidations per call site before it is blacklisted.
DEFAULT_RELEARN_LIMIT = 3
#: footprint variants per call site before it is blacklisted.
DEFAULT_MAX_VARIANTS = 4
#: learning aborts (and blacklists the site) past this region size —
#: a summary that large would buffer more than it could ever elide.
DEFAULT_MAX_REGION_RECORDS = 50_000

_IDLE, _LEARN, _MATCH = 0, 1, 2


def summarizable(policy: TaintPolicy) -> bool:
    """Summaries support the scalar-label policies (bool and PC taint).

    Set-valued policies (lineage) share label *objects* between
    locations; replaying a stored output dict would alias learn-time
    sets into later runs, so those stay on instruction-level
    propagation.
    """
    return type(policy) in (BoolTaintPolicy, PCTaintPolicy)


def cache_signature(
    policy: TaintPolicy,
    source_channels,
    sinks,
    propagate_addresses: bool,
) -> str:
    """Configuration fingerprint a cache's summaries are valid under.

    A summary learned under ``dift`` fidelity (bool labels, icall
    sinks) must never be applied under ``full`` (PC labels) or under a
    different sink/source configuration — the transfer function itself
    depends on all four knobs.
    """
    chans = "*" if source_channels is None else ",".join(
        str(c) for c in sorted(source_channels)
    )
    sink_sig = ";".join(
        "{}:{}:{}".format(
            r.kind,
            "*" if r.channels is None else ",".join(str(c) for c in sorted(r.channels)),
            r.action,
        )
        for r in (sinks or [])
    )
    return "{}|src={}|addr={}|sinks=[{}]".format(
        type(policy).__name__, chans, int(bool(propagate_addresses)), sink_sig
    )


@dataclass
class TaintSummary:
    """One call region's learned taint transfer function."""

    site: int  # call-site pc (the K_CALL marker's pc)
    data: bytes  # region record bytes, nested markers included;
    #              ends with the K_RET marker, or with the raising
    #              sink record for a raised summary
    freg: dict  # (tid, reg) -> label read before any write (None = clean)
    fmem: dict  # addr -> label read before any write
    wreg: dict  # (tid, reg) -> bool: existed at entry (written first)
    wmem: dict  # addr -> bool: existed at entry (written first)
    oreg: dict  # (tid, reg) -> post-region label (None = cleared)
    omem: dict  # addr -> post-region label (None = cleared)
    d_instr: int  # guest instructions the region represents
    d_taint: int
    d_sources: int
    d_sink_checks: int
    overhead: int  # modeled cycles the region charges
    rise: int  # peak-locations rise over the entry live-set size
    alerts: tuple = ()  # ((rel_seq, TaintAlert template), ...)
    raised: bool = False
    raise_culprit: int = -1

    @property
    def region_hash(self) -> int:
        """Stable hash of the region's record bytes (the stream guard)."""
        return zlib.crc32(self.data)

    @property
    def footprint_size(self) -> int:
        return len(self.freg) + len(self.fmem) + len(self.wreg) + len(self.wmem)

    @property
    def records(self) -> int:
        return len(self.data) // RECORD_SIZE


class SummaryCache:
    """Per-configuration store of learned :class:`TaintSummary` objects.

    Lives longer than any single kernel: the service keeps one per
    (program, fidelity) so summaries learned on one request elide work
    on every later request for the same program.  Counters here are
    cumulative across every kernel that used the cache; kernels also
    keep per-run copies for telemetry.
    """

    def __init__(
        self,
        signature: str = "",
        relearn_limit: int = DEFAULT_RELEARN_LIMIT,
        max_region_records: int = DEFAULT_MAX_REGION_RECORDS,
        max_variants: int = DEFAULT_MAX_VARIANTS,
    ):
        self.signature = signature
        self.relearn_limit = relearn_limit
        self.max_region_records = max_region_records
        self.max_variants = max_variants
        self.summaries: dict[int, list[TaintSummary]] = {}
        self.relearns: dict[int, int] = {}
        self.blacklist: set[int] = set()
        self.learned = 0
        self.hits = 0
        self.invalidations = 0
        self.records_elided = 0

    def store(self, site: int, summary: TaintSummary) -> None:
        self.summaries.setdefault(site, []).append(summary)
        self.learned += 1

    def miss(self, site: int) -> bool:
        """No stored variant matched this call's pre-state.

        Counts as an invalidation (the site's summaries did not cover
        the call) and returns whether learning one more variant is
        allowed; a site that keeps producing unseen footprints is
        blacklisted once its variant list is full.
        """
        self.invalidations += 1
        if len(self.summaries.get(site, ())) >= self.max_variants:
            self.blacklist.add(site)
            self.summaries.pop(site, None)
            return False
        return True

    def invalidate(self, site: int, summary: TaintSummary) -> bool:
        """Drop one diverged variant; returns whether re-learning is allowed.

        Byte divergence means the region's control path or operands
        changed under an identical pre-state — the other variants
        (different pre-states) may still be exact, so only the failed
        one goes.
        """
        variants = self.summaries.get(site)
        if variants is not None:
            try:
                variants.remove(summary)
            except ValueError:
                pass
            if not variants:
                self.summaries.pop(site, None)
        self.invalidations += 1
        n = self.relearns.get(site, 0) + 1
        self.relearns[site] = n
        if n >= self.relearn_limit:
            self.blacklist.add(site)
            self.summaries.pop(site, None)
        return site not in self.blacklist

    def counters(self) -> dict[str, int]:
        return {
            "learned": self.learned,
            "hits": self.hits,
            "invalidations": self.invalidations,
            "records_elided": self.records_elided,
        }


class SummaryKernel:
    """A :class:`PropagationKernel` wrapper that learns and replays
    call-region summaries over the marked record stream.

    Drop-in for the kernel interface the consumers use: templates,
    ``seq``, shadow/stats/alerts views and ``propagate_batch`` all
    delegate to the wrapped inner kernel; only records belonging to a
    matched region never reach it.  Call :meth:`settle` once the
    stream ends (or before reading observables mid-stream) to resolve
    a region still buffered for matching.
    """

    def __init__(self, inner: PropagationKernel, cache: SummaryCache | None = None):
        if not summarizable(inner.policy):
            raise ValueError(
                f"policy {type(inner.policy).__name__} is not summarizable"
            )
        sig = cache_signature(
            inner.policy,
            inner.source_channels,
            inner.sinks,
            inner.propagate_addresses,
        )
        if cache is None:
            cache = SummaryCache(sig)
        elif cache.signature != sig:
            raise ValueError(
                "summary cache signature mismatch: cache holds "
                f"{cache.signature!r}, kernel needs {sig!r}"
            )
        self.inner = inner
        self.cache = cache
        self.policy = inner.policy
        self.sinks = inner.sinks
        self.source_channels = inner.source_channels
        self.propagate_addresses = inner.propagate_addresses
        self._provider = None
        # per-run counters (the cache keeps cumulative ones)
        self.learned = 0
        self.hits = 0
        self.invalidations = 0
        self.records_elided = 0
        self.markers = 0  # marker records consumed by this layer
        self.batches = 0
        self.records_consumed = 0
        self.raised_effects: BatchEffects | None = None
        self._seq = 0
        #: pc -> (kind, read-regs tuple, written-reg or -1) for the
        #: footprint decode; mirrors the engine's operand semantics.
        self._fp: dict[int, tuple] = {}
        self._mode = _IDLE
        self._frame: dict | None = None

    # -- substrate views (the consumers read these off the kernel) ------
    @property
    def engine(self):
        return self.inner.engine

    @property
    def shadow(self):
        return self.inner.shadow

    @property
    def stats(self):
        return self.inner.stats

    @property
    def alerts(self):
        return self.inner.alerts

    @property
    def records_replayed(self) -> int:
        return self.inner.records_replayed

    @property
    def seq(self) -> int:
        return self._seq

    @seq.setter
    def seq(self, value: int) -> None:
        # Consumers re-anchor the cursor per flush; while a match is
        # buffering this equals seq0 + buffered weight, which every
        # frame exit path (apply / fallback / settle) recomputes from
        # the frame itself, so the assignment is always consistent.
        self._seq = value

    @property
    def template_provider(self):
        return self._provider

    @template_provider.setter
    def template_provider(self, fn) -> None:
        self._provider = fn
        self.inner.template_provider = fn

    @property
    def templates(self):
        return self.inner.templates

    @property
    def rules_for_pc(self):
        return self.inner.rules_for_pc

    def counters(self) -> dict[str, int]:
        return {
            "learned": self.learned,
            "hits": self.hits,
            "invalidations": self.invalidations,
            "records_elided": self.records_elided,
        }

    # -- templates ------------------------------------------------------
    def register_template(self, pc, instr, reg_reads, reg_writes, channel):
        kind, may_raise = self.inner.register_template(
            pc, instr, reg_reads, reg_writes, channel
        )
        if kind == K_GENERIC:
            reads = tuple(r for r, _ in reg_reads)
        elif kind == K_STORE:
            reads = (reg_reads[0][0],)
            if self.propagate_addresses:
                reads += tuple(r for r, _ in reg_reads[1:])
        elif kind == K_LOAD:
            reads = (
                tuple(r for r, _ in reg_reads) if self.propagate_addresses else ()
            )
        elif kind == K_SINK:
            reads = (reg_reads[0][0],)
        else:  # K_SKIP, K_IN, K_ALLOC, K_SPAWN
            reads = ()
        if kind in (K_SKIP, K_SINK, K_STORE, K_ALLOC, K_SPAWN):
            wreg = -1
        else:  # K_GENERIC, K_LOAD, K_IN
            wreg = reg_writes[0][0]
        self._fp[pc] = (kind, reads, wreg)
        return kind, may_raise

    def _resolve_fp(self, pc: int) -> tuple:
        info = self._fp.get(pc)
        while info is None:
            if self._provider is None:
                raise KeyError(f"no template registered for pc {pc}")
            self._provider(pc)
            info = self._fp.get(pc)
        return info

    # -- the batch interface --------------------------------------------
    def propagate_batch(self, records: bytes, shadow=None, policy=None) -> BatchEffects:
        if policy is not None and policy is not self.policy:
            raise ValueError("kernel is bound to its policy; build a new kernel")
        if shadow is not None and shadow is not self.inner.engine._shadow:
            self.inner.engine._shadow = shadow
        self.batches += 1
        n = len(records) // RECORD_SIZE
        self.records_consumed += n
        self.raised_effects = None
        agg = BatchEffects(records=n)
        kinds = records[0::RECORD_SIZE]
        if (
            self._frame is None
            and kinds.find(K_CALL) < 0
            and kinds.find(K_RET) < 0
        ):
            # Marker-free batch with no region in flight: pure delegation.
            self._feed(records, agg)
            return agg
        pos = 0
        for off in self._marker_offsets(kinds):
            if off > pos:
                self._span(records[pos:off], agg)
            self._marker(records, off, agg)
            pos = off + RECORD_SIZE
        if pos < len(records):
            self._span(records[pos:], agg)
        return agg

    @staticmethod
    def _marker_offsets(kinds: bytes) -> list[int]:
        out = []
        for byte in (K_CALL, K_RET):
            i = kinds.find(byte)
            while i >= 0:
                out.append(i * RECORD_SIZE)
                i = kinds.find(byte, i + 1)
        out.sort()
        return out

    # -- inner delegation -----------------------------------------------
    def _feed(self, data: bytes, agg: BatchEffects):
        return self._feed_at(data, self._seq, agg, advance=True)

    def _feed_at(self, data: bytes, seq: int, agg: BatchEffects, advance: bool = False):
        """Propagate ``data`` through the inner kernel anchored at ``seq``."""
        if not data:
            return BatchEffects()
        inner = self.inner
        inner.seq = seq
        try:
            eff = inner.propagate_batch(data)
        except AttackDetected:
            self._seq = inner.seq
            reff = inner.raised_effects
            self.raised_effects = BatchEffects(
                records=agg.records,
                instructions=agg.instructions + reff.instructions,
                replayed=agg.replayed + reff.replayed,
                tainted=agg.tainted + reff.tainted,
                overhead=agg.overhead + reff.overhead,
                raised=True,
            )
            raise
        if advance:
            self._seq = inner.seq
        agg.instructions += eff.instructions
        agg.replayed += eff.replayed
        agg.tainted += eff.tainted
        agg.overhead += eff.overhead
        return eff

    # -- span / marker dispatch -----------------------------------------
    def _span(self, data: bytes, agg: BatchEffects) -> None:
        if self._mode == _IDLE:
            self._feed(data, agg)
        elif self._mode == _LEARN:
            self._learn_span(data, agg)
        else:
            self._match_span(data, agg)

    def _marker(self, records: bytes, off: int, agg: BatchEffects) -> None:
        kind, tid, pc, a, b = RECORD.unpack_from(records, off)
        f = self._frame
        if f is None:
            self.markers += 1
            # Only a direct CALL at an unblacklisted site opens a region;
            # ICALL markers (a=1) and stray RETs are depth noise here, and
            # the calls nested under an unopened region summarize on
            # their own frames.
            if kind == K_CALL and a == 0:
                self._open(pc)
            return
        mb = records[off : off + RECORD_SIZE]
        if self._mode == _LEARN:
            self.markers += 1
            f["buf"] += mb
            if kind == K_CALL:
                f["depth"] += 1
            else:
                f["depth"] -= 1
                if f["depth"] == 0:
                    self._close_learn(agg)
            return
        # MATCH: the marker bytes are part of the stream guard.  Depth
        # bookkeeping and byte comparison always agree (depth is a pure
        # function of the byte stream), so a marker that fails the
        # compare is an ordinary divergence.
        s = f["summary"]
        m = f["matched"]
        if m + RECORD_SIZE <= len(s.data) and s.data[m : m + RECORD_SIZE] == mb:
            f["matched"] = m + RECORD_SIZE
            if kind == K_CALL:
                f["depth"] += 1
                return
            f["depth"] -= 1
            if f["depth"] > 0:
                return
            if f["matched"] == len(s.data):
                self._apply(s, f, agg, raise_now=False)
            else:
                # Region closed before the stored bytes ran out —
                # byte-impossible unless the summary is stale.
                self._fallback(agg)
                self._redispatch_marker(kind, pc, a, mb, agg)
            return
        self._fallback(agg)
        self._redispatch_marker(kind, pc, a, mb, agg)

    def _redispatch_marker(self, kind, pc, a, mb, agg) -> None:
        """Route a marker that diverged a match through the new mode."""
        f = self._frame
        if f is not None:  # re-learning the same region
            self.markers += 1
            f["buf"] += mb
            if kind == K_CALL:
                f["depth"] += 1
            else:
                f["depth"] -= 1
                if f["depth"] == 0:
                    self._close_learn(agg)
        else:
            self.markers += 1
            if kind == K_CALL and a == 0:
                self._open(pc)

    # -- region open ----------------------------------------------------
    def _open(self, pc: int) -> None:
        cache = self.cache
        if pc in cache.blacklist:
            return
        variants = cache.summaries.get(pc)
        if variants:
            for s in variants:
                if self._guards_ok(s):
                    self._frame = {
                        "site": pc,
                        "summary": s,
                        "matched": 0,
                        "depth": 1,
                        "seq0": self._seq,
                    }
                    self._mode = _MATCH
                    return
            # Entry miss: this call sees a pre-state no stored variant
            # covers, so learn one more (budget permitting).
            self.invalidations += 1
            if not cache.miss(pc):
                return  # blacklisted; run this call at full fidelity
        self._begin_learn(pc, self._seq, 1)

    def _guards_ok(self, s: TaintSummary) -> bool:
        shadow = self.inner.shadow
        rg = shadow.regs.get
        mg = shadow.mem.get
        for key, lab in s.freg.items():
            if rg(key) != lab:
                return False
        for addr, lab in s.fmem.items():
            if mg(addr) != lab:
                return False
        for key, existed in s.wreg.items():
            if (rg(key) is not None) != existed:
                return False
        for addr, existed in s.wmem.items():
            if (mg(addr) is not None) != existed:
                return False
        return True

    def _begin_learn(self, pc: int, seq0: int, depth: int) -> None:
        shadow = self.inner.shadow
        stats = self.inner.stats
        size0 = len(shadow.regs) + len(shadow.mem)
        self._frame = {
            "site": pc,
            "depth": depth,
            "seq0": seq0,
            "buf": bytearray(),
            "ov": 0,
            "i0": stats.instructions,
            "t0": stats.tainted_instructions,
            "s0": stats.sources,
            "k0": stats.sink_checks,
            "alerts0": len(self.inner.alerts),
            "old_peak": shadow.peak_locations,
            "size0": size0,
            "touched_r": set(),
            "touched_m": set(),
            "wrote_r": set(),
            "wrote_m": set(),
            "freg": {},
            "fmem": {},
            "wreg": {},
            "wmem": {},
        }
        # Peak-rise trick: drop the high-water mark to the entry
        # live-set size so the region's own peak delta is observable;
        # every frame exit restores max(old_peak, current peak), which
        # is exact because old_peak >= size0 always held.
        shadow.peak_locations = size0
        self._mode = _LEARN

    # -- learning -------------------------------------------------------
    def _learn_span(self, data: bytes, agg: BatchEffects) -> None:
        f = self._frame
        # Decode the footprint *before* the records execute: a location
        # not yet touched still carries its pre-region label.
        if not self._decode_footprint(data, f):
            # ALLOC/SPAWN inside the region: not summarizable, ever.
            self._abort_frame(blacklist=True)
            self._feed(data, agg)
            return
        f["buf"] += data
        if len(f["buf"]) > self.cache.max_region_records * RECORD_SIZE:
            self._abort_frame(blacklist=True)
            self._feed(data, agg)
            return
        try:
            eff = self._feed(data, agg)
        except AttackDetected as exc:
            self._finish_raised(f, data, exc)
            raise
        f["ov"] += eff.overhead

    def _decode_footprint(self, data: bytes, f: dict) -> bool:
        touched_r = f["touched_r"]
        touched_m = f["touched_m"]
        wrote_r = f["wrote_r"]
        wrote_m = f["wrote_m"]
        freg = f["freg"]
        fmem = f["fmem"]
        wreg = f["wreg"]
        wmem = f["wmem"]
        shadow = self.inner.shadow
        rg = shadow.regs.get
        mg = shadow.mem.get
        fp_get = self._fp.get
        for kind, tid, pc, a, b in RECORD.iter_unpack(data):
            if kind == K_SKIP or kind >= K_CALL:
                continue
            info = fp_get(pc)
            if info is None:
                info = self._resolve_fp(pc)
            tkind, reads, wr = info
            if tkind == K_ALLOC or tkind == K_SPAWN:
                return False
            if tkind == K_LOAD and a not in touched_m:
                touched_m.add(a)
                fmem[a] = mg(a)
            for r in reads:
                key = (tid, r)
                if key not in touched_r:
                    touched_r.add(key)
                    freg[key] = rg(key)
            if tkind == K_STORE:
                if a not in touched_m:
                    touched_m.add(a)
                    wmem[a] = mg(a) is not None
                wrote_m.add(a)
            elif wr >= 0:
                key = (tid, wr)
                if key not in touched_r:
                    touched_r.add(key)
                    wreg[key] = rg(key) is not None
                wrote_r.add(key)
        return True

    def _close_learn(self, agg: BatchEffects) -> None:
        f = self._frame
        inner = self.inner
        shadow = inner.shadow
        stats = inner.stats
        peak_now = shadow.peak_locations
        rise = peak_now - f["size0"]
        shadow.peak_locations = max(f["old_peak"], peak_now)
        regs_get = shadow.regs.get
        mem_get = shadow.mem.get
        s = TaintSummary(
            site=f["site"],
            data=bytes(f["buf"]),
            freg=f["freg"],
            fmem=f["fmem"],
            wreg=f["wreg"],
            wmem=f["wmem"],
            oreg={k: regs_get(k) for k in f["wrote_r"]},
            omem={a: mem_get(a) for a in f["wrote_m"]},
            d_instr=stats.instructions - f["i0"],
            d_taint=stats.tainted_instructions - f["t0"],
            d_sources=stats.sources - f["s0"],
            d_sink_checks=stats.sink_checks - f["k0"],
            overhead=f["ov"],
            rise=rise,
            alerts=tuple(
                (al.seq - f["seq0"], al) for al in inner.alerts[f["alerts0"] :]
            ),
        )
        self.cache.store(f["site"], s)
        self.learned += 1
        self._frame = None
        self._mode = _IDLE

    def _finish_raised(self, f: dict, data: bytes, exc: AttackDetected) -> None:
        """A sink raised while learning: store the truncated region iff
        the raise consumed this whole span (the raising record is the
        span's last — always true for the inline producer, which
        flushes right after raise-capable sinks).  ``f["buf"]`` already
        ends with ``data`` — the learn path buffers a span before
        feeding it — so the stored region must not append it again (a
        phantom trailing record would make replay wait for bytes that
        never come and sail past the raise point)."""
        inner = self.inner
        shadow = inner.shadow
        stats = inner.stats
        reff = inner.raised_effects
        complete = reff is not None and reff.instructions == self._span_weight(data)
        if complete and len(f["buf"]) <= (
            self.cache.max_region_records * RECORD_SIZE
        ):
            peak_now = shadow.peak_locations
            s = TaintSummary(
                site=f["site"],
                data=bytes(f["buf"]),
                freg=f["freg"],
                fmem=f["fmem"],
                wreg=f["wreg"],
                wmem=f["wmem"],
                oreg={k: shadow.regs.get(k) for k in f["wrote_r"]},
                omem={a: shadow.mem.get(a) for a in f["wrote_m"]},
                d_instr=stats.instructions - f["i0"],
                d_taint=stats.tainted_instructions - f["t0"],
                d_sources=stats.sources - f["s0"],
                d_sink_checks=stats.sink_checks - f["k0"],
                overhead=f["ov"] + (reff.overhead if reff is not None else 0),
                rise=peak_now - f["size0"],
                alerts=tuple(
                    (al.seq - f["seq0"], al) for al in inner.alerts[f["alerts0"] :]
                ),
                raised=True,
                raise_culprit=getattr(exc, "culprit_pc", -1),
            )
            self.cache.store(f["site"], s)
            self.learned += 1
        shadow.peak_locations = max(f["old_peak"], shadow.peak_locations)
        self._frame = None
        self._mode = _IDLE

    @staticmethod
    def _span_weight(data: bytes) -> int:
        w = 0
        for kind, _tid, _pc, a, _b in RECORD.iter_unpack(data):
            if kind == K_SKIP:
                w += a
            elif kind < K_CALL:
                w += 1
        return w

    # -- matching -------------------------------------------------------
    def _match_span(self, data: bytes, agg: BatchEffects) -> None:
        f = self._frame
        s = f["summary"]
        m = f["matched"]
        end = m + len(data)
        if end <= len(s.data) and s.data[m:end] == data:
            f["matched"] = end
            if s.raised and end == len(s.data):
                # The stored region ends at its raising sink record.
                self._apply(s, f, agg, raise_now=True)
            return
        self._fallback(agg)
        self._span(data, agg)  # re-dispatch the divergent span

    def _fallback(self, agg: BatchEffects) -> None:
        """Stream guard failed mid-region: propagate the buffered prefix
        for real and (relearn budget permitting) keep learning the rest
        of this very call — the shadow was untouched while matching, so
        the footprint decode over the prefix is still exact."""
        f = self._frame
        site = f["site"]
        s = f["summary"]
        prefix = s.data[: f["matched"]]
        seq0 = f["seq0"]
        depth = f["depth"]
        self.invalidations += 1
        allowed = self.cache.invalidate(site, s)
        self._frame = None
        self._mode = _IDLE
        if allowed:
            self._begin_learn(site, seq0, depth)
            f2 = self._frame
            if prefix:
                if not self._decode_footprint(prefix, f2):
                    self._abort_frame(blacklist=True)
                    self._feed_prefix(prefix, seq0, agg)
                    return
                f2["buf"] += prefix
                self._feed_prefix(prefix, seq0, agg)
        elif prefix:
            self._feed_prefix(prefix, seq0, agg)

    def _feed_prefix(self, prefix: bytes, seq0: int, agg: BatchEffects) -> None:
        # A fully-matched prefix of previously non-raising learned bytes
        # cannot raise (same bytes, same pre-state labels), so no
        # AttackDetected handling is needed here; defensively restore
        # the frame anyway if one escapes.
        try:
            self._feed_at(prefix, seq0, agg)
        except AttackDetected:
            if self._frame is not None:
                self._abort_frame(blacklist=False)
            raise
        self._seq = self.inner.seq

    def _apply(self, s: TaintSummary, f: dict, agg: BatchEffects, raise_now: bool) -> None:
        inner = self.inner
        shadow = inner.shadow
        regs = shadow.regs
        mem = shadow.mem
        size_now = len(regs) + len(mem)
        for key, lab in s.oreg.items():
            if lab is None:
                regs.pop(key, None)
            else:
                regs[key] = lab
        for addr, lab in s.omem.items():
            if lab is None:
                mem.pop(addr, None)
            else:
                mem[addr] = lab
        if size_now + s.rise > shadow.peak_locations:
            shadow.peak_locations = size_now + s.rise
        stats = inner.stats
        stats.instructions += s.d_instr
        stats.tainted_instructions += s.d_taint
        stats.sources += s.d_sources
        stats.sink_checks += s.d_sink_checks
        seq0 = f["seq0"]
        alerts = inner.alerts
        last = None
        for rel, al in s.alerts:
            last = replace(al, seq=seq0 + rel)
            alerts.append(last)
        self._seq = seq0 + s.d_instr
        n_rec = s.records
        self.records_elided += n_rec
        self.cache.records_elided += n_rec
        self.hits += 1
        self.cache.hits += 1
        self._frame = None
        self._mode = _IDLE
        agg.instructions += s.d_instr
        agg.tainted += s.d_taint
        agg.overhead += s.overhead
        if raise_now:
            self.raised_effects = BatchEffects(
                records=agg.records,
                instructions=agg.instructions,
                replayed=agg.replayed,
                tainted=agg.tainted,
                overhead=agg.overhead,
                raised=True,
            )
            raise AttackDetected(str(last), culprit_pc=s.raise_culprit)

    # -- frame teardown -------------------------------------------------
    def _abort_frame(self, blacklist: bool) -> None:
        f = self._frame
        shadow = self.inner.shadow
        shadow.peak_locations = max(f["old_peak"], shadow.peak_locations)
        if blacklist:
            self.cache.blacklist.add(f["site"])
        self._frame = None
        self._mode = _IDLE

    def settle(self) -> int:
        """Resolve an in-flight region at stream end.

        A pending match is fed through the inner kernel for real (it
        cannot raise — the buffered prefix matched non-raising learned
        bytes); a pending learn frame already propagated everything and
        just needs its peak bookkeeping restored.  Returns the modeled
        overhead cycles of any records propagated here so the caller
        can charge them.
        """
        f = self._frame
        if f is None:
            return 0
        if self._mode == _MATCH:
            s = f["summary"]
            prefix = s.data[: f["matched"]]
            seq0 = f["seq0"]
            self._frame = None
            self._mode = _IDLE
            agg = BatchEffects()
            if prefix:
                self._feed_at(prefix, seq0, agg)
                self._seq = self.inner.seq
            return agg.overhead
        self._abort_frame(blacklist=False)
        return 0


__all__ = [
    "DEFAULT_MAX_REGION_RECORDS",
    "DEFAULT_RELEARN_LIMIT",
    "SummaryCache",
    "SummaryKernel",
    "TaintSummary",
    "cache_signature",
    "summarizable",
]
