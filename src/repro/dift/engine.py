"""The DIFT propagation engine.

Subscribes to the VM hook bus and maintains :class:`~repro.dift.shadow.ShadowState`
under a pluggable :class:`~repro.dift.policy.TaintPolicy`:

* ``in`` instructions *source* taint (configurable per channel),
* data flows propagate labels register<->register and through memory
  (loads/stores/push/pop), with spawn passing the argument's label into
  the child's r0 — the same interprocedural flows the guest's calling
  convention pushes through r0..r3 and the stack,
* *sinks* (indirect-call targets, selected output channels) are checked
  against the shadow; a tainted sink either records a
  :class:`TaintAlert` or raises :class:`repro.vm.AttackDetected`,
  stopping the guest the way a hardware DIFT trap would.

Address registers do **not** propagate into loaded/stored values by
default (classic data-flow DIFT); set ``propagate_addresses=True`` for
the strict variant — the E11 bench ablates both.

Cost model: each instrumented instruction charges ``check_cycles``
(the inline test-and-skip stub) plus ``policy.propagate_cycles`` when
any input is tainted.  The multicore simulator (§2.1) runs this same
engine on a helper core instead and charges those cycles there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import Opcode
from ..vm.errors import AttackDetected
from ..vm.events import Hook, InstrEvent
from ..vm.machine import Machine
from .policy import PCTaintPolicy, TaintPolicy
from .shadow import ShadowState


@dataclass(frozen=True)
class TaintAlert:
    """A tainted value reached a sink."""

    seq: int
    tid: int
    pc: int  # the sink instruction
    sink: str  # "icall" | "out"
    label: object
    description: str
    #: the value that reached the sink (out value / icall target).
    value: int = 0
    #: output channel for "out" sinks (-1 otherwise).
    channel: int = -1

    def __str__(self) -> str:
        return f"[seq {self.seq}] tainted {self.sink} at pc={self.pc}: {self.description}"


@dataclass
class SinkRule:
    """What counts as a sink and what to do when taint reaches it."""

    kind: str  # "icall" | "out"
    channels: frozenset[int] | None = None  # for "out": which channels (None = all)
    action: str = "raise"  # "raise" -> AttackDetected, "record" -> alert list

    def matches(self, ev: InstrEvent) -> bool:
        if self.kind == "icall":
            return ev.instr.opcode is Opcode.ICALL
        if self.kind == "out":
            return ev.instr.opcode is Opcode.OUT and (
                self.channels is None or ev.channel in self.channels
            )
        return False


@dataclass
class DIFTStats:
    instructions: int = 0
    tainted_instructions: int = 0
    sources: int = 0
    sink_checks: int = 0

    @property
    def taint_rate(self) -> float:
        return self.tainted_instructions / self.instructions if self.instructions else 0.0


class DIFTEngine(Hook):
    """Inline DIFT: propagation runs on the application core.

    Attach with :meth:`attach`; the engine charges its overhead to the
    machine's cycle counters unless ``charge_overhead=False`` (the
    multicore simulator disables inline charging and accounts the same
    work on the helper core instead).
    """

    #: cycles for the per-instruction "any operand tainted?" stub.
    check_cycles = 1

    def __init__(
        self,
        policy: TaintPolicy,
        source_channels: frozenset[int] | None = None,
        sinks: list[SinkRule] | None = None,
        propagate_addresses: bool = False,
        charge_overhead: bool = True,
        paged_shadow: bool | None = None,
    ):
        self.policy = policy
        self.shadow = ShadowState(policy, paged=paged_shadow)
        self.source_channels = source_channels
        self.sinks = sinks if sinks is not None else [SinkRule(kind="icall")]
        self.propagate_addresses = propagate_addresses
        self.charge_overhead = charge_overhead
        self.alerts: list[TaintAlert] = []
        self.stats = DIFTStats()
        self.machine: Machine | None = None

    def attach(self, machine: Machine) -> "DIFTEngine":
        self.machine = machine
        machine.hooks.subscribe(self)
        return self

    # -- label helpers ------------------------------------------------------
    def _combine(self, labels: list) -> object | None:
        labels = [l for l in labels if l is not None]
        if not labels:
            return None
        if len(labels) == 1:
            return labels[0]
        return self.policy.combine(labels)

    def _reg_labels(self, tid: int, reg_reads) -> list:
        reg = self.shadow.regs.get
        return [reg((tid, r)) for r, _ in reg_reads]

    # -- the hook -----------------------------------------------------------
    def on_instruction(self, ev: InstrEvent) -> None:
        op = ev.instr.opcode
        tid = ev.tid
        shadow = self.shadow
        stats = self.stats
        stats.instructions += 1
        overhead = self.check_cycles
        tainted = False

        if op is Opcode.IN:
            if self.source_channels is None or ev.channel in self.source_channels:
                label = self.policy.taint_for_input(ev)
                stats.sources += 1
                tainted = label is not None
            else:
                label = None
            shadow.set_reg(tid, ev.reg_writes[0][0], label)
        elif op is Opcode.LI:
            shadow.set_reg(tid, ev.reg_writes[0][0], None)
        elif op is Opcode.LOAD or op is Opcode.POP:
            addr = ev.mem_reads[0][0]
            labels = [shadow.mem.get(addr)]
            if self.propagate_addresses:
                labels += self._reg_labels(tid, ev.reg_reads)
            label = self._combine(labels)
            if label is not None:
                label = self.policy.through(ev, label)
                tainted = True
            # dst is the first (non-SP) written register
            shadow.set_reg(tid, ev.reg_writes[0][0], label)
        elif op is Opcode.STORE or op is Opcode.PUSH:
            addr = ev.mem_writes[0][0]
            labels = [shadow.regs.get((tid, ev.reg_reads[0][0]))]
            if self.propagate_addresses and len(ev.reg_reads) > 1:
                labels += [shadow.regs.get((tid, r)) for r, _ in ev.reg_reads[1:]]
            label = self._combine(labels)
            if label is not None:
                label = self.policy.through(ev, label)
                tainted = True
            shadow.set_cell(addr, label)
        elif op is Opcode.ALLOC:
            # Fresh memory is untainted even when a freed block is reused.
            base, size = ev.alloc
            shadow.clear_range(base, size)
            shadow.set_reg(tid, ev.reg_writes[0][0], None)
        elif op is Opcode.SPAWN:
            arg_label = shadow.regs.get((tid, ev.reg_reads[0][0]))
            child = ev.reg_writes[0][1]
            shadow.set_reg(child, 0, arg_label)
            shadow.set_reg(tid, ev.reg_writes[0][0], None)  # tid value is clean
            tainted = arg_label is not None
        elif ev.reg_writes:
            # Generic ALU/compare/move propagation.
            label = self._combine(self._reg_labels(tid, ev.reg_reads))
            if label is not None:
                label = self.policy.through(ev, label)
                tainted = True
            shadow.set_reg(tid, ev.reg_writes[0][0], label)
        elif op is Opcode.ICALL or op is Opcode.OUT:
            label = shadow.regs.get((tid, ev.reg_reads[0][0]))
            tainted = label is not None
            if label is not None:
                self._check_sinks(ev, label)

        if tainted:
            stats.tainted_instructions += 1
            overhead += self.policy.propagate_cycles
        if self.charge_overhead and self.machine is not None:
            self.machine.add_overhead(overhead)

    def _check_sinks(self, ev: InstrEvent, label: object) -> None:
        for rule in self.sinks:
            if not rule.matches(ev):
                continue
            self.stats.sink_checks += 1
            description = self.policy.describe(label)
            alert = TaintAlert(
                seq=ev.seq,
                tid=ev.tid,
                pc=ev.pc,
                sink=rule.kind,
                label=label,
                description=description,
                value=ev.io_value if ev.io_value is not None else ev.reg_reads[0][1],
                channel=ev.channel if ev.channel is not None else -1,
            )
            self.alerts.append(alert)
            if rule.action == "raise":
                culprit = label if isinstance(self.policy, PCTaintPolicy) else -1
                raise AttackDetected(str(alert), culprit_pc=culprit)

    # -- reporting -----------------------------------------------------------
    def publish_telemetry(self, registry) -> None:
        """Dump propagation/alert metrics into a
        :class:`~repro.telemetry.MetricsRegistry`; call after the run."""
        stats = self.stats
        registry.counter("dift.instructions").inc(stats.instructions)
        registry.counter("dift.propagations").inc(stats.tainted_instructions)
        registry.counter("dift.sources").inc(stats.sources)
        registry.counter("dift.sink_checks").inc(stats.sink_checks)
        registry.counter("dift.alerts").inc(len(self.alerts))
        registry.gauge("dift.taint_rate").set(stats.taint_rate)
        registry.gauge("dift.tainted_locations.peak").set_max(self.shadow.peak_locations)
        registry.gauge("dift.tainted_locations.final").set(
            self.shadow.tainted_cells + self.shadow.tainted_regs
        )
        registry.gauge("dift.shadow_bytes").set(self.shadow.shadow_bytes)
        registry.counter("shadow.pages_allocated").inc(self.shadow.pages_allocated)

    def memory_overhead(self, machine: Machine, guest_word_bytes: int = 4) -> float:
        """Shadow bytes / guest data bytes (the paper's "memory overhead")."""
        guest = max(1, machine.memory.footprint * guest_word_bytes)
        return self.shadow.shadow_bytes / guest
