"""The DIFT propagation engine.

Subscribes to the VM hook bus and maintains :class:`~repro.dift.shadow.ShadowState`
under a pluggable :class:`~repro.dift.policy.TaintPolicy`:

* ``in`` instructions *source* taint (configurable per channel),
* data flows propagate labels register<->register and through memory
  (loads/stores/push/pop), with spawn passing the argument's label into
  the child's r0 — the same interprocedural flows the guest's calling
  convention pushes through r0..r3 and the stack,
* *sinks* (indirect-call targets, selected output channels) are checked
  against the shadow; a tainted sink either records a
  :class:`TaintAlert` or raises :class:`repro.vm.AttackDetected`,
  stopping the guest the way a hardware DIFT trap would.

Address registers do **not** propagate into loaded/stored values by
default (classic data-flow DIFT); set ``propagate_addresses=True`` for
the strict variant — the E11 bench ablates both.

Cost model: each instrumented instruction charges ``check_cycles``
(the inline test-and-skip stub) plus ``policy.propagate_cycles`` when
any input is tainted.  The multicore simulator (§2.1) runs this same
engine on a helper core instead and charges those cycles there.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .. import fastpath
from ..isa.instructions import Opcode
from ..vm.errors import AttackDetected
from ..vm.events import Hook, InstrEvent
from ..vm.machine import Machine
from .policy import BoolTaintPolicy, PCTaintPolicy, TaintPolicy
from .shadow import ShadowState


@dataclass(frozen=True)
class TaintAlert:
    """A tainted value reached a sink."""

    seq: int
    tid: int
    pc: int  # the sink instruction
    sink: str  # "icall" | "out"
    label: object
    description: str
    #: the value that reached the sink (out value / icall target).
    value: int = 0
    #: output channel for "out" sinks (-1 otherwise).
    channel: int = -1

    def __str__(self) -> str:
        return f"[seq {self.seq}] tainted {self.sink} at pc={self.pc}: {self.description}"


@dataclass
class SinkRule:
    """What counts as a sink and what to do when taint reaches it."""

    kind: str  # "icall" | "out"
    channels: frozenset[int] | None = None  # for "out": which channels (None = all)
    action: str = "raise"  # "raise" -> AttackDetected, "record" -> alert list

    def matches(self, ev: InstrEvent) -> bool:
        if self.kind == "icall":
            return ev.instr.opcode is Opcode.ICALL
        if self.kind == "out":
            return ev.instr.opcode is Opcode.OUT and (
                self.channels is None or ev.channel in self.channels
            )
        return False


@dataclass
class DIFTStats:
    instructions: int = 0
    tainted_instructions: int = 0
    sources: int = 0
    sink_checks: int = 0

    @property
    def taint_rate(self) -> float:
        return self.tainted_instructions / self.instructions if self.instructions else 0.0


class DIFTEngine(Hook):
    """Inline DIFT: propagation runs on the application core.

    Attach with :meth:`attach`; the engine charges its overhead to the
    machine's cycle counters unless ``charge_overhead=False`` (the
    multicore simulator disables inline charging and accounts the same
    work on the helper core instead).

    Propagation itself runs through a pluggable kernel
    (:mod:`repro.dift.kernel`): ``kernel="reference"`` keeps the
    per-event path below; ``kernel="array"`` (the default when numpy is
    importable, ``REPRO_FASTPATH_KERNEL`` overrides) packs instruction
    events into micro-batches of ring-format records and propagates
    them vectorized, with observables proven bit-identical by the
    differential suite.
    """

    #: cycles for the per-instruction "any operand tainted?" stub.
    check_cycles = 1

    def __init__(
        self,
        policy: TaintPolicy,
        source_channels: frozenset[int] | None = None,
        sinks: list[SinkRule] | None = None,
        propagate_addresses: bool = False,
        charge_overhead: bool = True,
        paged_shadow: bool | None = None,
        kernel: str | None = None,
        kernel_batch: int | None = None,
        summaries: bool | None = None,
        summary_cache=None,
    ):
        self.policy = policy
        wants_array = kernel == "array" or (
            kernel is None and fastpath.current().array_kernel
        )
        name = fastpath.propagation_kernel(kernel)
        self.kernel_fallback: str | None = None
        if name == "array" and type(policy) not in (BoolTaintPolicy, PCTaintPolicy):
            # The array kernel encodes labels as int64 scalars; set-based
            # policies (lineage) stay on the reference kernel.
            fastpath.note_kernel_fallback("policy", explicit=kernel == "array")
            name = "reference"
            self.kernel_fallback = "policy"
        elif wants_array and name == "reference":
            self.kernel_fallback = "numpy"  # counted by propagation_kernel
        #: resolved propagation kernel for this engine ("array"|"reference").
        self.kernel_name = name
        self.kernel_batch = fastpath.kernel_batch_size(kernel_batch)
        # Function-summary DIFT engages only for the scalar-label
        # policies (same constraint as the array kernel, and the
        # output-transfer replay needs unaliased labels).
        self._summaries = fastpath.resolve(summaries, "summaries") and type(
            policy
        ) in (BoolTaintPolicy, PCTaintPolicy)
        self._summary_cache = summary_cache
        self._shadow = ShadowState(policy, paged=paged_shadow, array=name == "array")
        self.source_channels = source_channels
        self.sinks = sinks if sinks is not None else [SinkRule(kind="icall")]
        self.propagate_addresses = propagate_addresses
        self.charge_overhead = charge_overhead
        self._alerts: list[TaintAlert] = []
        self._stats = DIFTStats()
        self.machine: Machine | None = None
        # Micro-batching state (installed by attach() for array engines).
        self._kernel = None
        self._batch: bytearray | None = None
        self._skip_cell = [0]
        self._batch_base = [0]
        self._fixups: dict[int, int] = {}

    def attach(self, machine: Machine) -> "DIFTEngine":
        self.machine = machine
        # Telemetry-enabled machines stamp cycle totals into trace spans
        # mid-run; batching defers overhead charging to flush points and
        # would shift those stamps, so they keep the per-event path
        # (observables are identical either way — only span timestamps
        # would move).
        if (
            self.kernel_name == "array" or self._summaries
        ) and not machine.telemetry.enabled:
            # Summaries ride the micro-batch closure, so they engage it
            # for the reference kernel too (wrapped, not replaced).
            self._enable_batching()
        machine.hooks.subscribe(self)
        return self

    # -- batched views -------------------------------------------------------
    # The packing closure defers propagation, so every external read of
    # shadow/stats/alerts drains pending records first.  Per-event
    # engines have `_batch is None` and skip straight through.
    def _drain(self) -> None:
        if self._batch is None:
            return
        if self._batch or self._skip_cell[0]:
            self._flush_batch()
        if self._summaries and self._kernel is not None:
            # Resolve a region still buffered for matching so the
            # observables below are exact.  Settling mid-run only costs
            # elision (pass-through resumes afterwards), never
            # correctness — and any later raise still escapes at its
            # own record's flush.
            n0 = len(self._alerts)
            extra = self._kernel.settle()
            self._patch_alert_values(n0)
            if extra and self.charge_overhead and self.machine is not None:
                self.machine.add_overhead(extra)

    @property
    def shadow(self) -> ShadowState:
        self._drain()
        return self._shadow

    @property
    def stats(self) -> DIFTStats:
        self._drain()
        return self._stats

    @property
    def alerts(self) -> list[TaintAlert]:
        self._drain()
        return self._alerts

    def on_run_end(self) -> None:
        self._drain()

    def policy_signature(self) -> str:
        """Stable description of the active taint policy + sink rules
        (what the trace-lake manifest records so a stored run's alerts
        can be interpreted without the engine)."""
        sinks = ",".join(
            f"{rule.kind}"
            f"[{'*' if rule.channels is None else '|'.join(map(str, sorted(rule.channels)))}]"
            f":{rule.action}"
            for rule in self.sinks
        )
        policy = type(self.policy).__name__
        return f"{policy}/b{self.policy.label_bytes}/{self.kernel_name}({sinks})"

    def lake_manifest(self) -> dict:
        """JSON-safe manifest fragment for the trace lake: policy
        signature, alert list, and the headline DIFT stats."""
        stats = self.stats
        return {
            "policy": self.policy_signature(),
            "alerts": [
                {
                    "seq": a.seq, "tid": a.tid, "pc": a.pc, "sink": a.sink,
                    "label": str(a.label), "description": a.description,
                    "value": getattr(a, "value", 0),
                    "channel": getattr(a, "channel", -1),
                }
                for a in self.alerts
            ],
            "dift": {
                "instructions": stats.instructions,
                "tainted_instructions": stats.tainted_instructions,
                "sources": stats.sources,
                "sink_checks": stats.sink_checks,
                "taint_rate": stats.taint_rate,
            },
        }

    def _enable_batching(self) -> None:
        from .kernel import (
            K_ALLOC,
            K_CALL,
            K_GENERIC,
            K_IN,
            K_LOAD,
            K_RET,
            K_SINK,
            K_SKIP,
            K_SPAWN,
            K_STORE,
            RECORD,
            _fit,
            _IO_NONE,
            build_kernel,
        )

        kern = build_kernel(
            self.kernel_name,
            self.policy,
            source_channels=self.source_channels,
            sinks=self.sinks,
            propagate_addresses=self.propagate_addresses,
            shadow=self._shadow,
            stats=self._stats,
            alerts=self._alerts,
        )
        summaries_on = self._summaries
        if summaries_on:
            from .summaries import SummaryKernel

            kern = SummaryKernel(kern, cache=self._summary_cache)
            self._summary_cache = kern.cache
        self._kernel = kern
        # Pseudo-kinds for call-boundary instructions (summary mode):
        # negative so no packed kind collides.
        SK_CALL, SK_RET, SK_ISINK = -1, -2, -3
        batch = bytearray()
        self._batch = batch
        skip_cell = self._skip_cell
        base = self._batch_base
        fixups = self._fixups
        flush_bytes = self.kernel_batch * RECORD.size
        kinds: dict[int, int] = {}
        raise_pcs: set[int] = set()
        pack = RECORD.pack
        extend = batch.extend
        kget = kinds.get
        register = kern.register_template
        flush = self._flush_batch

        def on_instruction(ev: InstrEvent) -> None:
            pc = ev.pc
            kind = kget(pc)
            if kind is None:
                kind, may_raise = register(
                    pc, ev.instr, ev.reg_reads, ev.reg_writes, ev.channel
                )
                if summaries_on:
                    op = ev.instr.opcode
                    if op is Opcode.CALL:
                        kind = SK_CALL
                    elif op is Opcode.RET:
                        kind = SK_RET
                    elif op is Opcode.ICALL:
                        kind = SK_ISINK
                kinds[pc] = kind
                if may_raise:
                    raise_pcs.add(pc)
            if kind < 0:
                # Call boundaries (summary mode): CALL/RET fold their
                # own skip weight into the run, cut it, then append the
                # zero-weight marker — CALL's weight lands before (i.e.
                # outside) the region, RET's inside it.  ICALL cuts the
                # run and puts its K_CALL(a=1) marker just before its
                # own sink record, then continues as a normal sink.
                if kind == SK_ISINK:
                    if not batch and not skip_cell[0]:
                        base[0] = ev.seq
                    if skip_cell[0]:
                        extend(pack(K_SKIP, 0, 0, skip_cell[0], 0))
                        skip_cell[0] = 0
                    extend(pack(K_CALL, ev.tid, pc, 1, 0))
                    kind = K_SINK
                else:
                    if not skip_cell[0] and not batch:
                        base[0] = ev.seq
                    skip_cell[0] += 1
                    extend(pack(K_SKIP, 0, 0, skip_cell[0], 0))
                    skip_cell[0] = 0
                    extend(
                        pack(K_CALL if kind == SK_CALL else K_RET, ev.tid, pc, 0, 0)
                    )
                    if len(batch) >= flush_bytes:
                        flush()
                    return
            if kind == K_SKIP:
                if not skip_cell[0] and not batch:
                    base[0] = ev.seq
                skip_cell[0] += 1
                return
            if not batch and not skip_cell[0]:
                base[0] = ev.seq
            if skip_cell[0]:
                extend(pack(K_SKIP, 0, 0, skip_cell[0], 0))
                skip_cell[0] = 0
            tid = ev.tid
            if kind == K_GENERIC:
                extend(pack(K_GENERIC, tid, pc, 0, 0))
            elif kind == K_LOAD:
                extend(pack(K_LOAD, tid, pc, ev.mem_reads[0][0], 0))
            elif kind == K_STORE:
                extend(pack(K_STORE, tid, pc, ev.mem_writes[0][0], 0))
            elif kind == K_SINK:
                value = ev.reg_reads[0][1]
                io = ev.io_value
                a = _fit(value)
                b = _IO_NONE if io is None else _fit(io)
                if a != value or (io is not None and b != io):
                    fixups[ev.seq] = io if io is not None else value
                extend(pack(K_SINK, tid, pc, a, b))
                if pc in raise_pcs:
                    # Flush so an AttackDetected escapes from this very
                    # instruction's dispatch, exactly like the inline
                    # reference (FailureInfo pc/seq must match).
                    flush()
                    return
            elif kind == K_IN:
                extend(pack(K_IN, tid, pc, _fit(ev.io_value), ev.input_index))
            elif kind == K_ALLOC:
                alloc_base, alloc_size = ev.alloc
                extend(pack(K_ALLOC, tid, pc, alloc_base, alloc_size))
            else:  # K_SPAWN
                extend(pack(K_SPAWN, tid, pc, ev.reg_writes[0][1], 0))
            if len(batch) >= flush_bytes:
                flush()

        # Instance attribute shadows the class method for the hook bus.
        self.on_instruction = on_instruction

    def _flush_batch(self) -> None:
        batch = self._batch
        skip = self._skip_cell
        if skip[0]:
            from .kernel import K_SKIP, RECORD

            batch.extend(RECORD.pack(K_SKIP, 0, 0, skip[0], 0))
            skip[0] = 0
        if not batch:
            return
        data = bytes(batch)
        del batch[:]
        kern = self._kernel
        kern.seq = self._batch_base[0]
        n0 = len(self._alerts)
        try:
            effects = kern.propagate_batch(data)
        except AttackDetected:
            self._patch_alert_values(n0)
            effects = kern.raised_effects
            if (
                self.charge_overhead
                and effects is not None
                and self.machine is not None
            ):
                self.machine.add_overhead(effects.overhead)
            raise
        self._patch_alert_values(n0)
        if self.charge_overhead and self.machine is not None:
            self.machine.add_overhead(effects.overhead)

    def _patch_alert_values(self, start: int) -> None:
        """Restore clamped sink payloads on alerts the flush appended."""
        fixups = self._fixups
        if not fixups:
            return
        alerts = self._alerts
        for i in range(start, len(alerts)):
            alert = alerts[i]
            value = fixups.pop(alert.seq, None)
            if value is not None:
                alerts[i] = replace(alert, value=value)

    # -- label helpers ------------------------------------------------------
    def _combine(self, labels: list) -> object | None:
        labels = [l for l in labels if l is not None]
        if not labels:
            return None
        if len(labels) == 1:
            return labels[0]
        return self.policy.combine(labels)

    def _reg_labels(self, tid: int, reg_reads) -> list:
        reg = self._shadow.regs.get
        return [reg((tid, r)) for r, _ in reg_reads]

    # -- the hook -----------------------------------------------------------
    def on_instruction(self, ev: InstrEvent) -> None:
        op = ev.instr.opcode
        tid = ev.tid
        shadow = self._shadow
        stats = self._stats
        stats.instructions += 1
        overhead = self.check_cycles
        tainted = False

        if op is Opcode.IN:
            if self.source_channels is None or ev.channel in self.source_channels:
                label = self.policy.taint_for_input(ev)
                stats.sources += 1
                tainted = label is not None
            else:
                label = None
            shadow.set_reg(tid, ev.reg_writes[0][0], label)
        elif op is Opcode.LI:
            shadow.set_reg(tid, ev.reg_writes[0][0], None)
        elif op is Opcode.LOAD or op is Opcode.POP:
            addr = ev.mem_reads[0][0]
            labels = [shadow.mem.get(addr)]
            if self.propagate_addresses:
                labels += self._reg_labels(tid, ev.reg_reads)
            label = self._combine(labels)
            if label is not None:
                label = self.policy.through(ev, label)
                tainted = True
            # dst is the first (non-SP) written register
            shadow.set_reg(tid, ev.reg_writes[0][0], label)
        elif op is Opcode.STORE or op is Opcode.PUSH:
            addr = ev.mem_writes[0][0]
            labels = [shadow.regs.get((tid, ev.reg_reads[0][0]))]
            if self.propagate_addresses and len(ev.reg_reads) > 1:
                labels += [shadow.regs.get((tid, r)) for r, _ in ev.reg_reads[1:]]
            label = self._combine(labels)
            if label is not None:
                label = self.policy.through(ev, label)
                tainted = True
            shadow.set_cell(addr, label)
        elif op is Opcode.ALLOC:
            # Fresh memory is untainted even when a freed block is reused.
            base, size = ev.alloc
            shadow.clear_range(base, size)
            shadow.set_reg(tid, ev.reg_writes[0][0], None)
        elif op is Opcode.SPAWN:
            arg_label = shadow.regs.get((tid, ev.reg_reads[0][0]))
            child = ev.reg_writes[0][1]
            shadow.set_reg(child, 0, arg_label)
            shadow.set_reg(tid, ev.reg_writes[0][0], None)  # tid value is clean
            tainted = arg_label is not None
        elif ev.reg_writes:
            # Generic ALU/compare/move propagation.
            label = self._combine(self._reg_labels(tid, ev.reg_reads))
            if label is not None:
                label = self.policy.through(ev, label)
                tainted = True
            shadow.set_reg(tid, ev.reg_writes[0][0], label)
        elif op is Opcode.ICALL or op is Opcode.OUT:
            label = shadow.regs.get((tid, ev.reg_reads[0][0]))
            tainted = label is not None
            if label is not None:
                self._check_sinks(ev, label)

        if tainted:
            stats.tainted_instructions += 1
            overhead += self.policy.propagate_cycles
        if self.charge_overhead and self.machine is not None:
            self.machine.add_overhead(overhead)

    def _check_sinks(self, ev: InstrEvent, label: object) -> None:
        for rule in self.sinks:
            if not rule.matches(ev):
                continue
            self._stats.sink_checks += 1
            description = self.policy.describe(label)
            alert = TaintAlert(
                seq=ev.seq,
                tid=ev.tid,
                pc=ev.pc,
                sink=rule.kind,
                label=label,
                description=description,
                value=ev.io_value if ev.io_value is not None else ev.reg_reads[0][1],
                channel=ev.channel if ev.channel is not None else -1,
            )
            self._alerts.append(alert)
            if rule.action == "raise":
                culprit = label if isinstance(self.policy, PCTaintPolicy) else -1
                raise AttackDetected(str(alert), culprit_pc=culprit)

    # -- reporting -----------------------------------------------------------
    def publish_telemetry(self, registry) -> None:
        """Dump propagation/alert metrics into a
        :class:`~repro.telemetry.MetricsRegistry`; call after the run."""
        stats = self.stats
        registry.counter("dift.instructions").inc(stats.instructions)
        registry.counter("dift.propagations").inc(stats.tainted_instructions)
        registry.counter("dift.sources").inc(stats.sources)
        registry.counter("dift.sink_checks").inc(stats.sink_checks)
        registry.counter("dift.alerts").inc(len(self.alerts))
        registry.gauge("dift.taint_rate").set(stats.taint_rate)
        registry.gauge("dift.tainted_locations.peak").set_max(self.shadow.peak_locations)
        registry.gauge("dift.tainted_locations.final").set(
            self.shadow.tainted_cells + self.shadow.tainted_regs
        )
        registry.gauge("dift.shadow_bytes").set(self.shadow.shadow_bytes)
        registry.counter("shadow.pages_allocated").inc(self.shadow.pages_allocated)
        if self._kernel is not None:
            # Emitted only when the micro-batcher actually engaged, so
            # per-event runs (telemetry machines included) keep their
            # exact historical metric key set.
            kern = self._kernel
            registry.counter("dift.kernel.batches").inc(kern.batches)
            registry.counter("dift.kernel.records").inc(kern.records_consumed)
            registry.counter("dift.kernel.replayed").inc(kern.records_replayed)
            counters = getattr(kern, "counters", None)
            if counters is not None:  # SummaryKernel per-run counters
                for key, value in counters().items():
                    registry.counter(f"dift.summaries.{key}").inc(value)
        if self.kernel_fallback == "numpy":
            registry.counter("dift.kernel.fallback").inc()

    def memory_overhead(self, machine: Machine, guest_word_bytes: int = 4) -> float:
        """Shadow bytes / guest data bytes (the paper's "memory overhead")."""
        guest = max(1, machine.memory.footprint * guest_word_bytes)
        return self.shadow.shadow_bytes / guest
