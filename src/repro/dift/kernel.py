"""Pluggable batch propagation kernels over packed 24-byte records.

The paper's helper core works because propagation consumes a *compact
stream* instead of re-executing the app (§2.1); the DIFT-coprocessor
line (PAPERS.md, arXiv 1812.01541) pushes the same decoupling into a
dedicated engine.  This module is that seam in software: DIFT
propagation runs over **batches** of the ring's packed 24-byte records
(:data:`RECORD`, PR 3's wire format) through a kernel interface, so the
inline engine, the out-of-process worker and the service all feed the
same stream to an interchangeable backend:

* :class:`ReferenceKernel` — the per-record reference: each record
  rebuilds its pc's template :class:`~repro.vm.events.InstrEvent` and
  runs through the unmodified :class:`~repro.dift.engine.DIFTEngine`
  logic, byte for byte (this is the worker loop PR 3 shipped, extracted
  behind the interface).
* :class:`ArrayKernel` — the vectorized backend: numpy decodes the
  batch into columns, a conservative *location-key fixpoint* computes
  an over-approximation of every register/cell that can carry taint,
  and only the records that can touch that set replay through
  policy-specialized per-record logic; the provably-untainted bulk is
  accounted in O(1) (instruction counts, check-cycle overhead, seq
  advance via prefix sums).  Sink records split the batch at pack time
  (the producer flushes before a raise-capable sink), so alert
  seq/ordering and ``AttackDetected`` raise points are byte-identical
  to the reference — proven by the differential suite and the 200-seed
  fuzz.

Kernel selection is :func:`repro.fastpath.propagation_kernel`
(``REPRO_FASTPATH_KERNEL=reference|array``; default array when numpy
imports, automatic fallback otherwise).  The array kernel only
specializes the two label-sized policies
(:class:`~repro.dift.policy.BoolTaintPolicy`,
:class:`~repro.dift.policy.PCTaintPolicy`); anything else (the lineage
set policy) stays on the reference kernel.
"""

from __future__ import annotations

import struct
from bisect import bisect_left
from dataclasses import dataclass, replace

from .. import fastpath
from ..isa.instructions import Opcode
from ..vm.errors import AttackDetected
from ..vm.events import Hook, InstrEvent
from .engine import DIFTEngine, TaintAlert
from .policy import BoolTaintPolicy, COPY_OPS, PCTaintPolicy, TaintPolicy
from .shadow import ShadowState

#: one packed record: kind u8, tid u16, pc u32, a i64, b i64, pad -> 24 B.
#: (Canonical here; :mod:`repro.multicore.parallel` re-exports it.)
RECORD = struct.Struct("<BHIqqx")
RECORD_SIZE = RECORD.size

K_SKIP = 0
K_GENERIC = 1
K_LOAD = 2
K_STORE = 3
K_ALLOC = 4
K_SPAWN = 5
K_IN = 6
K_SINK = 7
#: call-boundary markers (function-summary mode only): zero-weight
#: metadata records cut into the stream by producers when
#: ``fastpath.summaries`` is on.  ``K_CALL`` carries ``a=0`` for a
#: direct CALL site and ``a=1`` for an ICALL (never summarized); both
#: kinds are pure no-ops to the base kernels — every kind >= K_CALL
#: represents zero guest instructions.
K_CALL = 8
K_RET = 9

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
#: ``b`` sentinel for "io_value is None" on K_SINK records.
_IO_NONE = _I64_MIN

#: reg-key shift: key = tid << REG_SHIFT | reg (regs are < 64 per thread).
REG_SHIFT = 6

#: batches smaller than this skip the numpy machinery entirely — the
#: unbatched worker drains 1-record chunks where fixed decode cost
#: would dominate.
SMALL_BATCH = 48

#: fixpoint iteration cap; non-convergence selects the whole batch
#: (sound, just no bulk skip for that batch).
MAX_FIXPOINT = 20

#: once this many register keys are live-tainted, the fixpoint's bulk
#: skip can no longer pay (the register file is small, so nearly every
#: record selects anyway) and the kernel replays all live records
#: through the specialized scalar loop instead.
DENSE_REGS = 8

#: a selection probe that keeps more than this fraction of a batch is
#: not paying for its fixpoint; skip selection for the next
#: PROBE_EVERY - 1 batches and replay every live record instead.
SELECT_PAYOFF = 0.5
PROBE_EVERY = 8

_np = None


def _numpy():
    global _np
    if _np is None:
        import numpy

        _np = numpy
    return _np


def _fit(v: int) -> int:
    """Clamp ``v`` into the representable i64 payload range (the true
    value is restored producer-side via the alert fixup table)."""
    if v > _I64_MAX:
        return _I64_MAX
    if v <= _I64_MIN:
        return _I64_MIN + 1
    return v


def classify_opcode(instr, reg_writes) -> int:
    """Record kind for one static instruction.

    Must mirror ``DIFTEngine.on_instruction``'s dispatch chain so each
    pc's record kind matches the branch the engine takes.
    """
    op = instr.opcode
    if op is Opcode.IN:
        return K_IN
    if op is Opcode.LOAD or op is Opcode.POP:
        return K_LOAD
    if op is Opcode.STORE or op is Opcode.PUSH:
        return K_STORE
    if op is Opcode.ALLOC:
        return K_ALLOC
    if op is Opcode.SPAWN:
        return K_SPAWN
    if reg_writes:
        return K_GENERIC
    if op is Opcode.ICALL or op is Opcode.OUT:
        return K_SINK
    return K_SKIP


@dataclass
class BatchEffects:
    """What one ``propagate_batch`` call did (for accounting/telemetry)."""

    records: int = 0  # packed records consumed (incl. skip records)
    instructions: int = 0  # guest instructions they represent
    replayed: int = 0  # records run through per-record logic
    tainted: int = 0  # instructions with a tainted input
    overhead: int = 0  # modeled cycles (check + propagate stubs)
    raised: bool = False  # an AttackDetected escaped mid-batch


def select_kernel(explicit: str | None, policy: TaintPolicy) -> str:
    """Resolve the kernel name for ``policy``.

    :func:`repro.fastpath.propagation_kernel` handles the flag and the
    numpy probe; this adds the policy gate — the array kernel encodes
    labels as int64 scalars, so only the exact bool/PC policies
    qualify (subclasses could override the algebra).
    """
    name = fastpath.propagation_kernel(explicit)
    if name == "array" and type(policy) not in (BoolTaintPolicy, PCTaintPolicy):
        fastpath.note_kernel_fallback("policy", explicit=explicit == "array")
        name = "reference"
    return name


class PropagationKernel:
    """Stateful batch propagation over packed records.

    A kernel owns the replay substrate — templates, shadow, stats,
    alerts, the running ``seq`` — and consumes the record stream batch
    by batch via :meth:`propagate_batch`.  Producers register each pc's
    static operand template (:meth:`register_template`) strictly before
    the first record referencing it, or install a
    :attr:`template_provider` callback that does so on demand (the
    worker's side-pipe recv).

    ``shadow`` / ``stats`` / ``alerts`` may be adopted from an existing
    engine so the kernel mutates the very objects its caller already
    exposes (the inline engine does this).
    """

    def __init__(
        self,
        policy: TaintPolicy,
        source_channels: frozenset[int] | None = None,
        sinks=None,
        propagate_addresses: bool = False,
        shadow=None,
        stats=None,
        alerts=None,
    ):
        # The replay substrate *is* a stock engine (charge_overhead off:
        # the kernel accounts cycles itself, in bulk), so per-record
        # semantics can never drift from the inline reference.
        self.engine = DIFTEngine(
            policy,
            source_channels=source_channels,
            sinks=sinks,
            propagate_addresses=propagate_addresses,
            charge_overhead=False,
            paged_shadow=False,
            kernel="reference",
        )
        # A standalone kernel owns its shadow (the store variant that
        # matches its backend); adopted shadows are used as-is.
        self.engine._shadow = (
            shadow if shadow is not None else self._default_shadow(policy)
        )
        if stats is not None:
            self.engine._stats = stats
        if alerts is not None:
            self.engine._alerts = alerts
        self.policy = policy
        self.sinks = self.engine.sinks
        self.propagate_addresses = propagate_addresses
        self.source_channels = source_channels
        #: pc -> template InstrEvent (dynamic fields mutated in place).
        self.templates: dict[int, InstrEvent] = {}
        #: pc -> tuple of statically-matching SinkRules (K_SINK pcs).
        self.rules_for_pc: dict[int, tuple] = {}
        #: called with an unregistered pc; must register it (or raise).
        self.template_provider = None
        #: global dynamic instruction number of the next record.
        self.seq = 0
        #: effects of a batch that raised (stats were applied; the
        #: caller charges overhead before propagating the exception).
        self.raised_effects: BatchEffects | None = None
        self.batches = 0
        self.records_consumed = 0
        self.records_replayed = 0

    def _default_shadow(self, policy: TaintPolicy) -> ShadowState:
        return ShadowState(policy)

    # -- substrate views ----------------------------------------------------
    @property
    def shadow(self):
        return self.engine._shadow

    @property
    def stats(self):
        return self.engine._stats

    @property
    def alerts(self):
        return self.engine._alerts

    # -- templates ----------------------------------------------------------
    def register_template(
        self, pc: int, instr, reg_reads, reg_writes, channel
    ) -> tuple[int, bool]:
        """Register pc's static operand template.

        Returns ``(kind, may_raise)``: the record kind producers pack
        for this pc, and whether a sink here can raise (producers flush
        before such records so the raise escapes the sink instruction's
        own hook dispatch, exactly like the inline reference).
        """
        kind = classify_opcode(instr, reg_writes)
        may_raise = False
        if kind == K_SKIP:
            return kind, may_raise
        ev = InstrEvent(
            seq=0,
            tid=0,
            pc=pc,
            instr=instr,
            reg_reads=reg_reads,
            reg_writes=reg_writes,
            channel=channel,
        )
        self.templates[pc] = ev
        if kind == K_SINK:
            # Rule matching reads only static fields (opcode, channel).
            matched = tuple(r for r in self.sinks if r.matches(ev))
            self.rules_for_pc[pc] = matched
            may_raise = any(r.action == "raise" for r in matched)
        return kind, may_raise

    def _resolve_template(self, pc: int) -> InstrEvent:
        provider = self.template_provider
        while pc not in self.templates:
            if provider is None:
                raise KeyError(f"no template registered for pc {pc}")
            provider(pc)
        return self.templates[pc]

    # -- the batch interface -------------------------------------------------
    def propagate_batch(self, records: bytes, shadow=None, policy=None) -> BatchEffects:
        """Propagate one batch of packed records; returns its effects.

        ``shadow``/``policy`` default to the kernel's own; passing a
        different shadow rebinds the replay substrate to it (the
        interface form the consumers share), passing a different policy
        is an error — a kernel is specialized per policy.
        """
        if policy is not None and policy is not self.policy:
            raise ValueError("kernel is bound to its policy; build a new kernel")
        if shadow is not None and shadow is not self.engine._shadow:
            self.engine._shadow = shadow
        return self._propagate(records)

    def _propagate(self, records: bytes) -> BatchEffects:
        raise NotImplementedError

    # -- shared reference replay --------------------------------------------
    def _replay_all(self, records: bytes) -> BatchEffects:
        """Replay every record through the stock engine (the PR 3 worker
        loop, verbatim) — the reference semantics both kernels share."""
        engine = self.engine
        stats = engine._stats
        i0 = stats.instructions
        t0 = stats.tainted_instructions
        seq = self.seq
        n_records = len(records) // RECORD_SIZE
        templates_get = self.templates.get
        on_instruction = engine.on_instruction
        io_none = _IO_NONE
        SKIP, GENERIC, LOAD, STORE = K_SKIP, K_GENERIC, K_LOAD, K_STORE
        ALLOC, IN, SINK, CALL_M = K_ALLOC, K_IN, K_SINK, K_CALL
        check = engine.check_cycles
        prop = self.policy.propagate_cycles
        try:
            for kind, tid, pc, a, b in RECORD.iter_unpack(records):
                # Skip records carry pc=0, so they must short-circuit
                # before any template lookup.
                if kind == SKIP:
                    stats.instructions += a
                    seq += a
                    continue
                if kind >= CALL_M:
                    # Call-boundary markers: zero-weight stream metadata
                    # consumed by the summary layer; plain no-ops here.
                    continue
                ev = templates_get(pc)
                if ev is None:
                    ev = self._resolve_template(pc)
                ev.seq = seq
                seq += 1
                ev.tid = tid
                if kind == GENERIC:
                    pass
                elif kind == LOAD:
                    ev.mem_reads = ((a, 0),)
                elif kind == STORE:
                    ev.mem_writes = ((a, 0),)
                elif kind == SINK:
                    ev.reg_reads = ((ev.reg_reads[0][0], a),)
                    ev.io_value = None if b == io_none else b
                elif kind == IN:
                    ev.io_value = a
                    ev.input_index = b
                elif kind == ALLOC:
                    ev.alloc = (a, b)
                else:  # K_SPAWN
                    ev.reg_writes = ((ev.reg_writes[0][0], a),)
                on_instruction(ev)
        except AttackDetected:
            # Same stopping point as inline: stats/taint/alerts freeze
            # where the raise happened; the raising record counted an
            # instruction but charges no overhead cycles.
            self.seq = seq
            d_instr = stats.instructions - i0
            d_taint = stats.tainted_instructions - t0
            self.raised_effects = BatchEffects(
                records=n_records,
                instructions=d_instr,
                replayed=n_records,
                tainted=d_taint,
                overhead=check * (d_instr - 1) + prop * d_taint,
                raised=True,
            )
            self.batches += 1
            self.records_consumed += n_records
            self.records_replayed += n_records
            raise
        self.seq = seq
        d_instr = stats.instructions - i0
        d_taint = stats.tainted_instructions - t0
        self.batches += 1
        self.records_consumed += n_records
        self.records_replayed += n_records
        return BatchEffects(
            records=n_records,
            instructions=d_instr,
            replayed=n_records,
            tainted=d_taint,
            overhead=check * d_instr + prop * d_taint,
        )


class ReferenceKernel(PropagationKernel):
    """Pure-python per-record propagation — today's logic, extracted."""

    def _propagate(self, records: bytes) -> BatchEffects:
        return self._replay_all(records)


class ArrayKernel(PropagationKernel):
    """Vectorized batch propagation: numpy selection + sparse replay.

    Taint propagation is inherently sequential (each record's effect
    depends on the shadow state its predecessors left), so the kernel
    splits each batch into a vectorized *screen* and a specialized
    scalar *replay*:

    * taint-free batches (no live label, no source record — the common
      warm-up/drain phases) are bulk-accounted in O(1) via prefix sums;
    * with sparse taint (< :data:`DENSE_REGS` live register keys) a
      monotone fixpoint over reg/mem location keys computes a sound
      over-approximation of everything that can carry taint in the
      batch, and only records touching that set replay;
    * with dense taint (the small register file saturates, selection
      would keep ~everything anyway) every live record replays through
      the policy-specialized scalar loop — one dict lookup per pc, no
      per-record numpy indexing.

    Replay order is record order, so alerts, raise points,
    peak-location high-water marks and stats are byte-identical to the
    reference."""

    def __init__(self, *args, **kw):
        super().__init__(*args, **kw)
        if type(self.policy) not in (BoolTaintPolicy, PCTaintPolicy):
            raise ValueError(
                "ArrayKernel specializes BoolTaintPolicy/PCTaintPolicy; "
                f"got {type(self.policy).__name__} (use ReferenceKernel)"
            )
        np = _numpy()
        self._np = np
        self._rec_dtype = np.dtype(
            {
                "names": ["kind", "tid", "pc", "a", "b"],
                "formats": [np.uint8, np.uint16, np.uint32, np.int64, np.int64],
                "offsets": [0, 1, 3, 7, 15],
                "itemsize": RECORD_SIZE,
            }
        )
        self._cap = 0
        self._t_kind = None  # int16, -1 = unregistered
        self._t_r0 = None  # int64 read-reg numbers, -1 = none
        self._t_r1 = None
        self._t_r2 = None
        self._t_w = None  # int64 written/cleared reg number, -1 = none
        self._t_src = None  # bool: IN matching source_channels
        self._t_copy = None  # bool: opcode in COPY_OPS (PC `through`)
        self._t_extra = None  # bool: >3 read regs -> replay via events
        self._chan = {}  # pc -> alert channel (or -1)
        #: pc -> (r0, r1, r2, w, is_source, is_copy, sink_rules, channel):
        #: one dict hit per replayed record instead of six column gathers.
        self._info = {}
        self._grow(256)
        self.fixpoint_fallbacks = 0
        #: batches left before the next selection probe (0 = probe now).
        self._probe_countdown = 0

    def _default_shadow(self, policy: TaintPolicy) -> ShadowState:
        # Plain-dict cells: the replay loop's per-record get/set is the
        # hot path, where dict wins; the columnar ArrayLabelStore (the
        # engine's default when it engages this kernel inline) pays off
        # for bulk export/clear on dense-taint heaps and is adopted
        # as-is when a consumer passes such a shadow.
        return ShadowState(policy, paged=False)

    # -- template columns ---------------------------------------------------
    def _grow(self, need: int) -> None:
        np = self._np
        cap = max(need, self._cap * 2, 256)
        def ext(old, fill, dtype):
            fresh = np.full(cap, fill, dtype=dtype)
            if old is not None:
                fresh[: len(old)] = old
            return fresh

        self._t_kind = ext(self._t_kind, -1, np.int16)
        self._t_r0 = ext(self._t_r0, -1, np.int64)
        self._t_r1 = ext(self._t_r1, -1, np.int64)
        self._t_r2 = ext(self._t_r2, -1, np.int64)
        self._t_w = ext(self._t_w, -1, np.int64)
        self._t_src = ext(self._t_src, False, bool)
        self._t_copy = ext(self._t_copy, False, bool)
        self._t_extra = ext(self._t_extra, False, bool)
        self._cap = cap

    def register_template(self, pc, instr, reg_reads, reg_writes, channel):
        kind, may_raise = super().register_template(
            pc, instr, reg_reads, reg_writes, channel
        )
        if kind == K_SKIP:
            return kind, may_raise
        if pc >= self._cap:
            self._grow(pc + 1)
        if kind == K_GENERIC:
            reads = [r for r, _ in reg_reads]
        elif kind == K_STORE:
            reads = [reg_reads[0][0]]
            if self.propagate_addresses:
                reads += [r for r, _ in reg_reads[1:]]
        elif kind == K_LOAD:
            reads = [r for r, _ in reg_reads] if self.propagate_addresses else []
        elif kind in (K_SPAWN, K_SINK):
            reads = [reg_reads[0][0]]
        else:  # K_IN, K_ALLOC
            reads = []
        self._t_kind[pc] = kind
        for slot, field in zip(range(3), (self._t_r0, self._t_r1, self._t_r2)):
            field[pc] = reads[slot] if slot < len(reads) else -1
        self._t_extra[pc] = len(reads) > 3
        # SINKs write nothing; STOREs write memory, not a register.
        self._t_w[pc] = reg_writes[0][0] if kind not in (K_SINK, K_STORE) else -1
        self._t_src[pc] = kind == K_IN and (
            self.source_channels is None or channel in self.source_channels
        )
        self._t_copy[pc] = instr.opcode in COPY_OPS
        self._info[pc] = (
            reads[0] if len(reads) > 0 else -1,
            reads[1] if len(reads) > 1 else -1,
            reads[2] if len(reads) > 2 else -1,
            int(self._t_w[pc]),
            bool(self._t_src[pc]),
            instr.opcode in COPY_OPS,
            self.rules_for_pc.get(pc, ()),
            channel if channel is not None else -1,
        )
        self._chan[pc] = channel if channel is not None else -1
        return kind, may_raise

    # -- tainted-key export -------------------------------------------------
    def _tainted_keys(self):
        """Current tainted (reg-key array, mem-addr array), sorted."""
        np = self._np
        shadow = self.engine._shadow
        regs = shadow.regs
        if regs:
            t_reg = np.fromiter(
                ((t << REG_SHIFT) | r for t, r in regs), dtype=np.int64, count=len(regs)
            )
            t_reg.sort()
        else:
            t_reg = np.empty(0, dtype=np.int64)
        mem = shadow.mem
        tainted_addrs = getattr(mem, "tainted_addresses", None)
        if tainted_addrs is not None:
            t_mem = tainted_addrs()  # ArrayLabelStore: vectorized export
        elif mem:
            t_mem = np.fromiter(iter(mem.keys()), dtype=np.int64, count=len(mem))
            t_mem.sort()
        else:
            t_mem = np.empty(0, dtype=np.int64)
        return t_reg, t_mem

    # -- the batch ----------------------------------------------------------
    def _propagate(self, records: bytes) -> BatchEffects:
        n = len(records) // RECORD_SIZE
        if n < SMALL_BATCH:
            return self._replay_all(records)
        np = self._np
        arr = np.frombuffer(records, dtype=self._rec_dtype)
        kind = arr["kind"]
        pc = arr["pc"].astype(np.int64)
        valid = (kind != K_SKIP) & (kind < K_CALL)
        max_pc = int(pc.max(initial=0))
        if max_pc >= self._cap:
            self._grow(max_pc + 1)
        unknown = valid & (self._t_kind[pc] < 0)
        if unknown.any():
            for p in np.unique(pc[unknown]).tolist():
                self._resolve_template(p)
        if self._t_extra[pc][valid].any():
            # A pc with >3 effective read regs (none in the current ISA,
            # but soundness first): replay the whole batch per-record.
            self.fixpoint_fallbacks += 1
            return self._replay_all(records)

        a = arr["a"]
        # Instructions per record: live = 1, skip = run length, call
        # markers (kind >= K_CALL) = 0 — markers are weightless metadata.
        w = np.where(valid, 1, np.where(kind == K_SKIP, a, 0))
        cum = np.cumsum(w)
        total_instr = int(cum[-1])
        self.batches += 1
        self.records_consumed += n

        shadow = self.engine._shadow
        live_regs = len(shadow.regs)
        if not live_regs and not len(shadow.mem):
            if not (valid & self._t_src[pc]).any():
                # Taint-free screen: no live label anywhere and no
                # source record in the batch, so nothing can observe or
                # create taint — the whole batch is bulk-accounted.
                stats = self.engine._stats
                stats.instructions += total_instr
                self.seq += total_instr
                return BatchEffects(
                    records=n,
                    instructions=total_instr,
                    overhead=self.engine.check_cycles * total_instr,
                )

        if self._probe_countdown > 0:
            # The last probe showed selection not paying for its
            # fixpoint on this stream; replay every live record.
            self._probe_countdown -= 1
            idx = np.nonzero(valid)[0]
        elif live_regs >= DENSE_REGS:
            # Taint saturates the register file: selection converges on
            # ~everything, so skip the fixpoint and replay all records.
            idx = np.nonzero(valid)[0]
        else:
            t_reg, t_mem = self._tainted_keys()
            producing_base = valid & self._t_src[pc]
            idx = self._select(
                np, arr, kind, pc, a, valid, producing_base, t_reg, t_mem
            )
            if idx is None:  # fixpoint aborted dense: select everything
                self._probe_countdown = PROBE_EVERY - 1
                idx = np.nonzero(valid)[0]
            else:
                n_valid = int(valid.sum())
                if n_valid and len(idx) > SELECT_PAYOFF * n_valid:
                    self._probe_countdown = PROBE_EVERY - 1
        seq_at = self.seq + cum - w
        return self._replay(idx, arr, pc, seq_at, cum, total_instr, n)

    def _select(self, np, arr, kind, pc, a, valid, producing_base, t_reg, t_mem):
        """Conservative vectorized selection: index of every record that
        can read, create, write or clear a possibly-tainted key, or
        ``None`` when the fixpoint saturates the register file early
        (selection would keep ~everything — caller replays all).

        A monotone fixpoint grows the key set through the batch's
        producer edges (ignoring kills keeps it a sound
        over-approximation of every intermediate shadow state)."""
        b = arr["b"]
        tid = arr["tid"].astype(np.int64)
        r0 = self._t_r0[pc]
        r1 = self._t_r1[pc]
        r2 = self._t_r2[pc]
        wr = self._t_w[pc]
        tshift = tid << REG_SHIFT
        k0 = np.where(valid & (r0 >= 0), tshift | r0, -1)
        k1 = np.where(valid & (r1 >= 0), tshift | r1, -1)
        k2 = np.where(valid & (r2 >= 0), tshift | r2, -1)
        kw = np.where(valid & (wr >= 0), tshift | wr, -1)
        is_load = kind == K_LOAD
        is_store = kind == K_STORE
        is_spawn = kind == K_SPAWN
        is_alloc = kind == K_ALLOC
        k_spawn = np.where(is_spawn, a << REG_SHIFT, -1)

        def in_set(keys, table):
            if not len(table):
                return np.zeros(len(keys), dtype=bool)
            return (keys >= 0) & np.isin(keys, table)

        prod = producing_base
        for _ in range(MAX_FIXPOINT):
            prod = (
                producing_base
                | in_set(k0, t_reg)
                | in_set(k1, t_reg)
                | in_set(k2, t_reg)
                | (is_load & in_set(a, t_mem))
            )
            fresh_reg = np.unique(
                np.concatenate((kw[prod & (kw >= 0)], k_spawn[prod & is_spawn]))
            )
            if len(t_reg) and len(fresh_reg):
                fresh_reg = fresh_reg[~np.isin(fresh_reg, t_reg)]
            fresh_mem = np.unique(a[prod & is_store])
            if len(t_mem) and len(fresh_mem):
                fresh_mem = fresh_mem[~np.isin(fresh_mem, t_mem)]
            if not len(fresh_reg) and not len(fresh_mem):
                break
            if len(fresh_reg):
                t_reg = np.sort(np.concatenate((t_reg, fresh_reg)))
                if len(t_reg) >= 2 * DENSE_REGS:
                    # The over-approximation saturated the register
                    # file; no point converging just to select ~all.
                    return None
            if len(fresh_mem):
                t_mem = np.sort(np.concatenate((t_mem, fresh_mem)))
        else:
            # Non-convergence: select everything (sound, no bulk skip).
            self.fixpoint_fallbacks += 1
            return np.nonzero(valid)[0]

        # Select: records that may read taint (prod), write/clear a
        # possibly-tainted location, or free a range overlapping one.
        sel = prod | in_set(kw, t_reg) | in_set(k_spawn, t_reg)
        sel |= is_store & in_set(a, t_mem)
        if len(t_mem):
            alloc_idx = np.nonzero(is_alloc)[0]
            if len(alloc_idx):
                lo = np.searchsorted(t_mem, a[alloc_idx])
                hi = np.searchsorted(t_mem, a[alloc_idx] + b[alloc_idx])
                sel[alloc_idx] |= hi > lo
        sel &= valid
        return np.nonzero(sel)[0]

    def _replay(self, idx, arr, pc, seq_at, cum, total_instr, n_records):
        """Replay the selected records in order through a specialized
        scalar loop (exact engine semantics for bool/PC labels); the
        skipped bulk is accounted through the batch prefix sums."""
        np = self._np
        policy = self.policy
        is_pc = type(policy) is PCTaintPolicy
        engine = self.engine
        shadow = engine._shadow
        stats = engine._stats
        regs = shadow.regs
        mem = shadow.mem
        regs_get = regs.get
        regs_pop = regs.pop
        mem_get = mem.get
        mem_pop = mem.pop
        sh_clear = shadow.clear_range
        alerts_append = engine._alerts.append
        describe = policy.describe
        peak = shadow.peak_locations
        check = engine.check_cycles
        prop = policy.propagate_cycles
        GENERIC, LOAD, STORE = K_GENERIC, K_LOAD, K_STORE
        ALLOC, SPAWN, IN = K_ALLOC, K_SPAWN, K_IN
        io_none = _IO_NONE
        info_get = self._info.__getitem__

        kinds_l = arr["kind"][idx].tolist()
        tids_l = arr["tid"][idx].tolist()
        pcs_l = pc[idx].tolist()
        a_l = arr["a"][idx].tolist()
        b_l = arr["b"][idx].tolist()
        seq_l = seq_at[idx].tolist()
        n_sel = len(kinds_l)
        self.records_replayed += n_sel

        tainted_n = 0
        sources_n = 0
        sink_checks_n = 0
        sq = -1
        try:
            for k, t, p, av, bv, sq in zip(kinds_l, tids_l, pcs_l, a_l, b_l, seq_l):
                r0, r1, r2, wreg, src, copy, rules, chan_p = info_get(p)
                if k == GENERIC:
                    lab = regs_get((t, r0)) if r0 >= 0 else None
                    if r1 >= 0:
                        l2 = regs_get((t, r1))
                        if l2 is not None and (lab is None or not is_pc or l2 > lab):
                            lab = l2
                        if r2 >= 0:
                            l2 = regs_get((t, r2))
                            if l2 is not None and (
                                lab is None or not is_pc or l2 > lab
                            ):
                                lab = l2
                    if lab is None:
                        regs_pop((t, wreg), None)
                    else:
                        if is_pc and not copy:
                            lab = p
                        tainted_n += 1
                        regs[(t, wreg)] = lab
                        size = len(regs) + len(mem)
                        if size > peak:
                            peak = size
                elif k == LOAD:
                    lab = mem_get(av)
                    if r0 >= 0:  # propagate_addresses: address regs join in
                        l2 = regs_get((t, r0))
                        if l2 is not None and (lab is None or not is_pc or l2 > lab):
                            lab = l2
                        if r1 >= 0:
                            l2 = regs_get((t, r1))
                            if l2 is not None and (
                                lab is None or not is_pc or l2 > lab
                            ):
                                lab = l2
                            if r2 >= 0:
                                l2 = regs_get((t, r2))
                                if l2 is not None and (
                                    lab is None or not is_pc or l2 > lab
                                ):
                                    lab = l2
                    if lab is None:
                        regs_pop((t, wreg), None)
                    else:
                        if is_pc and not copy:
                            lab = p
                        tainted_n += 1
                        regs[(t, wreg)] = lab
                        size = len(regs) + len(mem)
                        if size > peak:
                            peak = size
                elif k == STORE:
                    lab = regs_get((t, r0))
                    if r1 >= 0:  # propagate_addresses
                        l2 = regs_get((t, r1))
                        if l2 is not None and (lab is None or not is_pc or l2 > lab):
                            lab = l2
                        if r2 >= 0:
                            l2 = regs_get((t, r2))
                            if l2 is not None and (
                                lab is None or not is_pc or l2 > lab
                            ):
                                lab = l2
                    if lab is None:
                        mem_pop(av, None)
                    else:
                        if is_pc and not copy:
                            lab = p
                        tainted_n += 1
                        mem[av] = lab
                        size = len(regs) + len(mem)
                        if size > peak:
                            peak = size
                elif k == IN:
                    if src:
                        sources_n += 1
                        tainted_n += 1
                        regs[(t, wreg)] = p if is_pc else True
                        size = len(regs) + len(mem)
                        if size > peak:
                            peak = size
                    else:
                        regs_pop((t, wreg), None)
                elif k == ALLOC:
                    sh_clear(av, bv)
                    regs_pop((t, wreg), None)
                elif k == SPAWN:
                    arg = regs_get((t, r0))
                    child_key = (av, 0)
                    if arg is None:
                        regs_pop(child_key, None)
                    else:
                        regs[child_key] = arg
                        size = len(regs) + len(mem)
                        if size > peak:
                            peak = size
                    regs_pop((t, wreg), None)
                    if arg is not None:
                        tainted_n += 1
                else:  # K_SINK
                    lab = regs_get((t, r0))
                    if lab is not None:
                        for rule in rules:
                            sink_checks_n += 1
                            alert = TaintAlert(
                                seq=sq,
                                tid=t,
                                pc=p,
                                sink=rule.kind,
                                label=lab,
                                description=describe(lab),
                                value=bv if bv != io_none else av,
                                channel=chan_p,
                            )
                            alerts_append(alert)
                            if rule.action == "raise":
                                raise AttackDetected(
                                    str(alert), culprit_pc=lab if is_pc else -1
                                )
                        tainted_n += 1
        except AttackDetected:
            # Freeze exactly at the raise point: everything up to the
            # raising record (replayed or bulk) counts instructions; the
            # raising record itself adds an instruction and its sink
            # checks/alert above, but neither taint nor a check cycle —
            # like the reference.
            j = bisect_left(seq_l, sq)
            raise_pos = int(np.searchsorted(seq_at, sq))
            instr_delta = int(cum[raise_pos])
            stats.instructions += instr_delta
            stats.tainted_instructions += tainted_n
            stats.sources += sources_n
            stats.sink_checks += sink_checks_n
            shadow.peak_locations = peak
            self.records_replayed -= n_sel - (j + 1)
            self.seq += instr_delta
            self.raised_effects = BatchEffects(
                records=n_records,
                instructions=instr_delta,
                replayed=j + 1,
                tainted=tainted_n,
                overhead=check * (instr_delta - 1) + prop * tainted_n,
                raised=True,
            )
            raise
        stats.instructions += total_instr
        stats.tainted_instructions += tainted_n
        stats.sources += sources_n
        stats.sink_checks += sink_checks_n
        shadow.peak_locations = peak
        self.seq += total_instr
        return BatchEffects(
            records=n_records,
            instructions=total_instr,
            replayed=n_sel,
            tainted=tainted_n,
            overhead=check * total_instr + prop * tainted_n,
        )


def build_kernel(name: str, policy: TaintPolicy, **kw) -> PropagationKernel:
    """Instantiate a kernel by resolved name ("array" | "reference")."""
    if name == "array":
        return ArrayKernel(policy, **kw)
    if name == "reference":
        return ReferenceKernel(policy, **kw)
    raise ValueError(f"unknown propagation kernel {name!r}")


class RecordStreamCapture(Hook):
    """Capture a run's packed record stream (bench/test aid).

    Attach to a machine like an engine; after the run, :attr:`chunks`
    holds the packed record bytes (skip-compressed, same wire format
    the ring ships), :attr:`templates` the per-pc operand templates in
    first-use order, and :attr:`fixups` the seq -> true-value patches
    for clamped sink payloads.  :meth:`prime` registers the templates
    into a kernel so the stream can be replayed through it.
    """

    #: pseudo-kinds (marker capture only, never hit the wire as-is)
    _SK_CALL = -1
    _SK_RET = -2
    _SK_ISINK = -3

    def __init__(self, flush_records: int = 4096, markers: bool = False):
        self.chunks: list[bytes] = []
        self.templates: list[tuple] = []
        self.fixups: dict[int, int] = {}
        self._kinds: dict[int, int] = {}
        self._batch = bytearray()
        self._flush_bytes = flush_records * RECORD_SIZE
        self._skip = 0
        self._markers = markers
        self.instructions = 0

    def attach(self, machine) -> "RecordStreamCapture":
        machine.hooks.subscribe(self)
        return self

    def on_instruction(self, ev: InstrEvent) -> None:
        pc = ev.pc
        kind = self._kinds.get(pc)
        if kind is None:
            kind = classify_opcode(ev.instr, ev.reg_writes)
            if self._markers:
                op = ev.instr.opcode
                if op is Opcode.CALL:
                    kind = self._SK_CALL
                elif op is Opcode.RET:
                    kind = self._SK_RET
                elif op is Opcode.ICALL:
                    kind = self._SK_ISINK
            self._kinds[pc] = kind
            if kind != K_SKIP and kind not in (self._SK_CALL, self._SK_RET):
                self.templates.append(
                    (pc, ev.instr, ev.reg_reads, ev.reg_writes, ev.channel)
                )
        self.instructions += 1
        batch = self._batch
        if kind < 0:
            # Summary-mode call boundaries, mirroring the engine closure:
            # CALL/RET fold their own skip weight into the run, cut it,
            # then append the zero-weight marker (so CALL's weight lands
            # before — outside — the region and RET's weight inside it).
            # ICALL cuts the run and puts its K_CALL(a=1) marker just
            # before its own sink record.
            if kind == self._SK_ISINK:
                if self._skip:
                    batch.extend(RECORD.pack(K_SKIP, 0, 0, self._skip, 0))
                    self._skip = 0
                batch.extend(RECORD.pack(K_CALL, ev.tid, pc, 1, 0))
                kind = K_SINK
            else:
                self._skip += 1
                batch.extend(RECORD.pack(K_SKIP, 0, 0, self._skip, 0))
                self._skip = 0
                batch.extend(
                    RECORD.pack(
                        K_CALL if kind == self._SK_CALL else K_RET, ev.tid, pc, 0, 0
                    )
                )
                if len(batch) >= self._flush_bytes:
                    self.chunks.append(bytes(batch))
                    del batch[:]
                return
        if kind == K_SKIP:
            self._skip += 1
            return
        if self._skip:
            batch.extend(RECORD.pack(K_SKIP, 0, 0, self._skip, 0))
            self._skip = 0
        tid = ev.tid
        if kind == K_GENERIC:
            batch.extend(RECORD.pack(K_GENERIC, tid, pc, 0, 0))
        elif kind == K_LOAD:
            batch.extend(RECORD.pack(K_LOAD, tid, pc, ev.mem_reads[0][0], 0))
        elif kind == K_STORE:
            batch.extend(RECORD.pack(K_STORE, tid, pc, ev.mem_writes[0][0], 0))
        elif kind == K_SINK:
            value = ev.reg_reads[0][1]
            io = ev.io_value
            a = _fit(value)
            b = _IO_NONE if io is None else _fit(io)
            if a != value or (io is not None and b != io):
                self.fixups[ev.seq] = io if io is not None else value
            batch.extend(RECORD.pack(K_SINK, tid, pc, a, b))
        elif kind == K_IN:
            batch.extend(RECORD.pack(K_IN, tid, pc, _fit(ev.io_value), ev.input_index))
        elif kind == K_ALLOC:
            base, size = ev.alloc
            batch.extend(RECORD.pack(K_ALLOC, tid, pc, base, size))
        else:  # K_SPAWN
            batch.extend(RECORD.pack(K_SPAWN, tid, pc, ev.reg_writes[0][1], 0))
        if len(batch) >= self._flush_bytes:
            self.chunks.append(bytes(batch))
            del batch[:]

    def finish(self) -> "RecordStreamCapture":
        if self._skip:
            self._batch.extend(RECORD.pack(K_SKIP, 0, 0, self._skip, 0))
            self._skip = 0
        if self._batch:
            self.chunks.append(bytes(self._batch))
            del self._batch[:]
        return self

    def prime(self, kernel: PropagationKernel) -> PropagationKernel:
        """Register the captured templates into ``kernel``."""
        for pc, instr, reg_reads, reg_writes, channel in self.templates:
            kernel.register_template(pc, instr, reg_reads, reg_writes, channel)
        return kernel

    def patch_alerts(self, alerts: list[TaintAlert]) -> list[TaintAlert]:
        """Restore clamped sink values on replayed alerts."""
        if not self.fixups:
            return alerts
        return [
            replace(al, value=self.fixups[al.seq]) if al.seq in self.fixups else al
            for al in alerts
        ]


__all__ = [
    "ArrayKernel",
    "BatchEffects",
    "K_ALLOC",
    "K_CALL",
    "K_GENERIC",
    "K_IN",
    "K_LOAD",
    "K_RET",
    "K_SINK",
    "K_SKIP",
    "K_SPAWN",
    "K_STORE",
    "MAX_FIXPOINT",
    "PropagationKernel",
    "RECORD",
    "RECORD_SIZE",
    "RecordStreamCapture",
    "ReferenceKernel",
    "SMALL_BATCH",
    "build_kernel",
    "classify_opcode",
    "select_kernel",
]
