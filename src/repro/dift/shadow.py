"""Shadow state: taint labels for registers and memory.

Mirrors the guest's storage one-for-one: a label per (thread, register)
and per memory cell.  Untainted locations are simply absent, so
:attr:`tainted_cells` / :attr:`shadow_bytes` directly measure the
footprint the paper reports as "taint memory overhead".

Three interchangeable memory backends behind the paged seam
(`repro.fastpath.paged_shadow` / `repro.fastpath.array_kernel`):

* **flat dict** — address -> label, the reference implementation;
* **paged store** — 4 KiB pages of label slots allocated on first
  taint, with unallocated pages reading as the shared all-clear page.
  ``clear_range`` (every ``free``/``alloc`` recycling a block) drops or
  sweeps whole pages instead of popping one dict key per address, and
  ``snapshot`` copies page lists instead of rebuilding a cell dict.
* **array store** — the same page geometry over numpy ``int64`` label
  words (scalar-encodable policies only: bool -> 1, last-writer -> pc,
  ``-1`` = untainted).  Adds a vectorized :meth:`tainted_addresses`
  export the array propagation kernel uses to seed its per-batch
  tainted-key set without a Python-level scan.

All backends expose the same mapping surface (``get``/``pop``/
``[]=``/``len``/``values``/``items``), hold only non-``None`` labels,
and produce bit-identical taint sets — proven by the fast-path
differential suite.
"""

from __future__ import annotations

from .. import fastpath as fastpath_config
from .policy import PCTaintPolicy, TaintPolicy

#: cells per shadow page (a 4 KiB page of one-word label slots).
PAGE_SIZE = 4096
PAGE_SHIFT = 12
PAGE_MASK = PAGE_SIZE - 1


class PagedLabelStore:
    """Sparse address -> label map backed by fixed-size label pages."""

    __slots__ = ("pages", "counts", "total", "pages_allocated")

    def __init__(self) -> None:
        #: page index -> list of PAGE_SIZE label slots (None = untainted).
        self.pages: dict[int, list] = {}
        #: page index -> number of non-None slots (drives page reclaim).
        self.counts: dict[int, int] = {}
        self.total = 0
        #: monotone count of pages ever materialized (telemetry).
        self.pages_allocated = 0

    # -- mapping surface (mirrors the dict backend) ---------------------
    def get(self, addr: int, default=None):
        page = self.pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return default
        label = page[addr & PAGE_MASK]
        return default if label is None else label

    def __contains__(self, addr: int) -> bool:
        return self.get(addr) is not None

    def __setitem__(self, addr: int, label) -> None:
        idx = addr >> PAGE_SHIFT
        page = self.pages.get(idx)
        if page is None:
            # Materialize a private copy of the all-clear page.
            page = self.pages[idx] = [None] * PAGE_SIZE
            self.counts[idx] = 0
            self.pages_allocated += 1
        slot = addr & PAGE_MASK
        if page[slot] is None:
            self.counts[idx] += 1
            self.total += 1
        page[slot] = label

    def pop(self, addr: int, default=None):
        idx = addr >> PAGE_SHIFT
        page = self.pages.get(idx)
        if page is None:
            return default
        slot = addr & PAGE_MASK
        label = page[slot]
        if label is None:
            return default
        page[slot] = None
        remaining = self.counts[idx] - 1
        if remaining == 0:
            del self.pages[idx]
            del self.counts[idx]
        else:
            self.counts[idx] = remaining
        self.total -= 1
        return label

    def __len__(self) -> int:
        return self.total

    def __eq__(self, other) -> bool:
        if isinstance(other, PagedLabelStore):
            return self.total == other.total and dict(self.items()) == dict(other.items())
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    __hash__ = None

    def values(self):
        for page in self.pages.values():
            for label in page:
                if label is not None:
                    yield label

    def items(self):
        for idx, page in self.pages.items():
            base = idx << PAGE_SHIFT
            for slot, label in enumerate(page):
                if label is not None:
                    yield base + slot, label

    def keys(self):
        for addr, _ in self.items():
            yield addr

    __iter__ = keys

    # -- bulk operations -------------------------------------------------
    def clear_range(self, base: int, size: int) -> None:
        """Untaint ``[base, base+size)``; full pages are dropped whole."""
        if size <= 0 or not self.pages:
            return
        end = base + size
        first = base >> PAGE_SHIFT
        last = (end - 1) >> PAGE_SHIFT
        if last - first + 1 <= len(self.pages):
            touched = [i for i in range(first, last + 1) if i in self.pages]
        else:
            touched = [i for i in self.pages if first <= i <= last]
        for idx in touched:
            page_base = idx << PAGE_SHIFT
            lo = max(0, base - page_base)
            hi = min(PAGE_SIZE, end - page_base)
            if lo == 0 and hi == PAGE_SIZE:
                self.total -= self.counts.pop(idx)
                del self.pages[idx]
                continue
            page = self.pages[idx]
            cleared = 0
            for slot in range(lo, hi):
                if page[slot] is not None:
                    page[slot] = None
                    cleared += 1
            if cleared:
                remaining = self.counts[idx] - cleared
                self.total -= cleared
                if remaining == 0:
                    del self.pages[idx]
                    del self.counts[idx]
                else:
                    self.counts[idx] = remaining

    def copy(self) -> "PagedLabelStore":
        new = PagedLabelStore.__new__(PagedLabelStore)
        new.pages = {idx: page.copy() for idx, page in self.pages.items()}
        new.counts = dict(self.counts)
        new.total = self.total
        new.pages_allocated = self.pages_allocated
        return new

    def as_dict(self) -> dict[int, object]:
        return dict(self.items())


class ArrayLabelStore:
    """Sparse address -> label map over numpy int64 label pages.

    Same page geometry and mapping surface as :class:`PagedLabelStore`,
    but each page is one ``int64`` word per cell (``-1`` = untainted;
    the sentinel cannot be 0 because pc 0 is a valid last-writer
    label).  Only scalar-encodable labels fit: ``True`` for the bool
    policy, the non-negative writer pc for the PC policy — exactly the
    policies the array kernel specializes.
    """

    __slots__ = ("pages", "counts", "total", "pages_allocated", "pc_labels", "_np")

    #: empty-slot sentinel (labels are True->1 or a pc >= 0).
    CLEAR = -1

    def __init__(self, pc_labels: bool = False) -> None:
        import numpy

        self._np = numpy
        #: page index -> int64 array of PAGE_SIZE label words.
        self.pages: dict[int, object] = {}
        #: page index -> number of non-clear slots (drives page reclaim).
        self.counts: dict[int, int] = {}
        self.total = 0
        #: monotone count of pages ever materialized (telemetry).
        self.pages_allocated = 0
        #: decode words as writer pcs (else as the bool label ``True``).
        self.pc_labels = pc_labels

    def _decode(self, word: int):
        return int(word) if self.pc_labels else True

    # -- mapping surface (mirrors the dict backend) ---------------------
    def get(self, addr: int, default=None):
        page = self.pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return default
        word = page[addr & PAGE_MASK]
        return default if word == self.CLEAR else self._decode(word)

    def __contains__(self, addr: int) -> bool:
        return self.get(addr) is not None

    def __setitem__(self, addr: int, label) -> None:
        idx = addr >> PAGE_SHIFT
        page = self.pages.get(idx)
        if page is None:
            page = self.pages[idx] = self._np.full(PAGE_SIZE, self.CLEAR, dtype=self._np.int64)
            self.counts[idx] = 0
            self.pages_allocated += 1
        slot = addr & PAGE_MASK
        if page[slot] == self.CLEAR:
            self.counts[idx] += 1
            self.total += 1
        page[slot] = 1 if label is True else label

    def pop(self, addr: int, default=None):
        idx = addr >> PAGE_SHIFT
        page = self.pages.get(idx)
        if page is None:
            return default
        slot = addr & PAGE_MASK
        word = page[slot]
        if word == self.CLEAR:
            return default
        page[slot] = self.CLEAR
        remaining = self.counts[idx] - 1
        if remaining == 0:
            del self.pages[idx]
            del self.counts[idx]
        else:
            self.counts[idx] = remaining
        self.total -= 1
        return self._decode(word)

    def __len__(self) -> int:
        return self.total

    def __eq__(self, other) -> bool:
        if isinstance(other, (ArrayLabelStore, PagedLabelStore)):
            return self.total == len(other) and dict(self.items()) == dict(other.items())
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    __hash__ = None

    def values(self):
        for _, label in self.items():
            yield label

    def items(self):
        np = self._np
        for idx, page in self.pages.items():
            base = idx << PAGE_SHIFT
            for slot in np.nonzero(page != self.CLEAR)[0].tolist():
                yield base + slot, self._decode(page[slot])

    def keys(self):
        for addr, _ in self.items():
            yield addr

    __iter__ = keys

    # -- bulk operations -------------------------------------------------
    def tainted_addresses(self):
        """All tainted addresses as a sorted int64 numpy array."""
        np = self._np
        if not self.pages:
            return np.empty(0, dtype=np.int64)
        parts = []
        for idx in sorted(self.pages):
            page = self.pages[idx]
            parts.append((idx << PAGE_SHIFT) + np.nonzero(page != self.CLEAR)[0])
        return np.concatenate(parts).astype(np.int64, copy=False)

    def clear_range(self, base: int, size: int) -> None:
        """Untaint ``[base, base+size)``; full pages are dropped whole."""
        if size <= 0 or not self.pages:
            return
        end = base + size
        first = base >> PAGE_SHIFT
        last = (end - 1) >> PAGE_SHIFT
        if last - first + 1 <= len(self.pages):
            touched = [i for i in range(first, last + 1) if i in self.pages]
        else:
            touched = [i for i in self.pages if first <= i <= last]
        np = self._np
        for idx in touched:
            page_base = idx << PAGE_SHIFT
            lo = max(0, base - page_base)
            hi = min(PAGE_SIZE, end - page_base)
            if lo == 0 and hi == PAGE_SIZE:
                self.total -= self.counts.pop(idx)
                del self.pages[idx]
                continue
            page = self.pages[idx]
            window = page[lo:hi]
            cleared = int(np.count_nonzero(window != self.CLEAR))
            if cleared:
                window[:] = self.CLEAR
                remaining = self.counts[idx] - cleared
                self.total -= cleared
                if remaining == 0:
                    del self.pages[idx]
                    del self.counts[idx]
                else:
                    self.counts[idx] = remaining

    def copy(self) -> "ArrayLabelStore":
        new = ArrayLabelStore.__new__(ArrayLabelStore)
        new._np = self._np
        new.pages = {idx: page.copy() for idx, page in self.pages.items()}
        new.counts = dict(self.counts)
        new.total = self.total
        new.pages_allocated = self.pages_allocated
        new.pc_labels = self.pc_labels
        return new

    def as_dict(self) -> dict[int, object]:
        return dict(self.items())


class ShadowState:
    """Taint labels for one run's registers and memory cells."""

    def __init__(
        self,
        policy: TaintPolicy,
        regs: dict[tuple[int, int], object] | None = None,
        mem=None,
        paged: bool | None = None,
        array: bool = False,
    ):
        self.policy = policy
        #: (tid, reg) -> label, only for tainted registers.
        self.regs: dict[tuple[int, int], object] = {} if regs is None else regs
        #: address -> label, only for tainted cells (dict, paged or array
        #: store — ``array=True`` requires numpy and a scalar-encodable
        #: policy, which the engine's kernel resolution guarantees).
        if mem is None:
            if array and fastpath_config.numpy_available():
                mem = ArrayLabelStore(pc_labels=type(policy) is PCTaintPolicy)
            elif fastpath_config.resolve(paged, "paged_shadow"):
                mem = PagedLabelStore()
            else:
                mem = {}
        self.mem = mem
        #: high-water mark of simultaneously tainted locations (regs + cells).
        self.peak_locations = 0

    # -- registers -------------------------------------------------------
    def reg(self, tid: int, reg: int) -> object | None:
        return self.regs.get((tid, reg))

    def set_reg(self, tid: int, reg: int, label: object | None) -> None:
        key = (tid, reg)
        if label is None:
            self.regs.pop(key, None)
        else:
            self.regs[key] = label
            self._bump_peak()

    # -- memory ------------------------------------------------------------
    def cell(self, addr: int) -> object | None:
        return self.mem.get(addr)

    def set_cell(self, addr: int, label: object | None) -> None:
        if label is None:
            self.mem.pop(addr, None)
        else:
            self.mem[addr] = label
            self._bump_peak()

    def _bump_peak(self) -> None:
        size = len(self.mem) + len(self.regs)
        if size > self.peak_locations:
            self.peak_locations = size

    def clear_range(self, base: int, size: int) -> None:
        """Untaint ``[base, base+size)`` (used when blocks are freed).

        One pass over ``min(range size, tainted cells)`` entries: the
        paged store sweeps only materialized pages, and the dict backend
        switches to scanning its keys when the range is wider than the
        tainted set — clearing a huge range that overlaps mostly
        untainted holes no longer visits every hole.
        """
        mem = self.mem
        if isinstance(mem, dict):
            if size > len(mem):
                end = base + size
                for addr in [a for a in mem if base <= a < end]:
                    del mem[addr]
            else:
                for addr in range(base, base + size):
                    mem.pop(addr, None)
        else:
            mem.clear_range(base, size)

    # -- measurement ------------------------------------------------------------
    @property
    def tainted_cells(self) -> int:
        return len(self.mem)

    @property
    def tainted_regs(self) -> int:
        return len(self.regs)

    @property
    def shadow_bytes(self) -> int:
        """Modeled shadow-memory size in bytes."""
        return (len(self.mem) + len(self.regs)) * self.policy.label_bytes

    @property
    def pages_allocated(self) -> int:
        """Shadow pages ever materialized (0 under the dict backend)."""
        return getattr(self.mem, "pages_allocated", 0)

    def mem_items(self) -> dict[int, object]:
        """Tainted cells as a plain dict (backend-independent view)."""
        return dict(self.mem.items()) if not isinstance(self.mem, dict) else dict(self.mem)

    def snapshot(self) -> "ShadowState":
        mem = dict(self.mem) if isinstance(self.mem, dict) else self.mem.copy()
        return ShadowState(policy=self.policy, regs=dict(self.regs), mem=mem)
