"""Shadow state: taint labels for registers and memory.

Mirrors the guest's storage one-for-one: a label per (thread, register)
and per memory cell.  Untainted locations are simply absent, so
:attr:`tainted_cells` / :attr:`shadow_bytes` directly measure the
footprint the paper reports as "taint memory overhead".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .policy import TaintPolicy


@dataclass
class ShadowState:
    policy: TaintPolicy
    #: (tid, reg) -> label, only for tainted registers.
    regs: dict[tuple[int, int], object] = field(default_factory=dict)
    #: address -> label, only for tainted cells.
    mem: dict[int, object] = field(default_factory=dict)
    #: high-water mark of simultaneously tainted locations (regs + cells).
    peak_locations: int = 0

    # -- registers -------------------------------------------------------
    def reg(self, tid: int, reg: int) -> object | None:
        return self.regs.get((tid, reg))

    def set_reg(self, tid: int, reg: int, label: object | None) -> None:
        key = (tid, reg)
        if label is None:
            self.regs.pop(key, None)
        else:
            self.regs[key] = label
            self._bump_peak()

    # -- memory ------------------------------------------------------------
    def cell(self, addr: int) -> object | None:
        return self.mem.get(addr)

    def set_cell(self, addr: int, label: object | None) -> None:
        if label is None:
            self.mem.pop(addr, None)
        else:
            self.mem[addr] = label
            self._bump_peak()

    def _bump_peak(self) -> None:
        size = len(self.mem) + len(self.regs)
        if size > self.peak_locations:
            self.peak_locations = size

    def clear_range(self, base: int, size: int) -> None:
        """Untaint ``[base, base+size)`` (used when blocks are freed)."""
        for addr in range(base, base + size):
            self.mem.pop(addr, None)

    # -- measurement ------------------------------------------------------------
    @property
    def tainted_cells(self) -> int:
        return len(self.mem)

    @property
    def tainted_regs(self) -> int:
        return len(self.regs)

    @property
    def shadow_bytes(self) -> int:
        """Modeled shadow-memory size in bytes."""
        return (len(self.mem) + len(self.regs)) * self.policy.label_bytes

    def snapshot(self) -> "ShadowState":
        return ShadowState(policy=self.policy, regs=dict(self.regs), mem=dict(self.mem))
