"""Deterministic replay from checkpoints.

Replaying a logged execution = restore a checkpoint snapshot, install a
:class:`~repro.vm.scheduler.ScriptedScheduler` with the schedule-segment
suffix, and run.  Because the VM is deterministic modulo scheduling and
inputs (both captured in the log / snapshot), the replay is
bit-identical — which is what lets fine-grained tracing be turned on
*only* during replay (§2.2's replay phase).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.program import Program
from ..vm.events import Hook
from ..vm.machine import Machine, RunResult
from ..vm.scheduler import ScriptedScheduler
from ..vm.snapshot import restore_snapshot
from .logging import Checkpoint, EventLog


@dataclass
class ReplayOutcome:
    machine: Machine
    result: RunResult
    replayed_instructions: int
    reproduced_failure: bool


class Replayer:
    """Replays (suffixes of) one logged execution of ``program``."""

    def __init__(self, program: Program, log: EventLog):
        self.program = program
        self.log = log

    def _segments_after(
        self, checkpoint: Checkpoint, include_tids: set[int] | None
    ) -> list[tuple[int, int]]:
        segments = self.log.schedule[checkpoint.segment_index :]
        if include_tids is None:
            return list(segments)
        return [(tid, n) for tid, n in segments if tid in include_tids]

    def replay(
        self,
        checkpoint: Checkpoint | None = None,
        include_tids: set[int] | None = None,
        hooks: tuple[Hook, ...] = (),
        max_instructions: int = 50_000_000,
    ) -> ReplayOutcome:
        """Replay from ``checkpoint`` (default: the initial one).

        ``include_tids`` restricts the replayed schedule to those
        threads (execution reduction); hooks (e.g. an ONTRAC tracer)
        observe only the replayed region.
        """
        if checkpoint is None:
            checkpoint = self.log.checkpoints[0]
        machine = Machine(self.program)
        restore_snapshot(machine, checkpoint.snapshot)
        machine.scheduler = ScriptedScheduler(
            self._segments_after(checkpoint, include_tids)
        )
        for hook in hooks:
            attach = getattr(hook, "attach", None)
            if callable(attach):
                attach(machine)  # tool hooks bind the machine for overhead accounting
            else:
                machine.hooks.subscribe(hook)
        start_seq = machine.seq
        result = machine.run(max_instructions=max_instructions)
        reproduced = (
            result.failed
            and result.failure is not None
            and result.failure.kind == self.log.failure_kind
        )
        return ReplayOutcome(
            machine=machine,
            result=result,
            replayed_instructions=machine.seq - start_seq,
            reproduced_failure=reproduced,
        )
