"""Execution reduction (§2.2): find the small, relevant part of a long
multithreaded execution and replay only that with tracing on.

Given the replay log of a failing run, the reducer

1. picks the **latest checkpoint** before the failure (temporal
   reduction: everything earlier is summarized by the snapshot),
2. computes the **relevant thread set** by closing over the logged
   inter-thread interactions after that checkpoint (spawn ancestry,
   join targets, shared locks/barriers) starting from the failing
   thread (thread reduction), and
3. replays only the relevant threads' schedule segments from the
   checkpoint with fine-grained tracing attached, **verifying** that
   the failure still reproduces; if dropping threads perturbed the
   execution, it falls back to replaying all threads in the window.

The outcome carries the numbers the MySQL case study reports: original
vs logged vs traced-full vs traced-reduced cost, and full vs reduced
dynamic-dependence counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.program import Program
from ..ontrac.tracer import OnlineTracer, OntracConfig
from .logging import EventLog
from .replay import Replayer, ReplayOutcome


@dataclass
class ReductionPlan:
    checkpoint_index: int
    checkpoint_seq: int
    include_tids: set[int]
    window_segments: int


@dataclass
class ReductionOutcome:
    plan: ReductionPlan
    replay: ReplayOutcome
    tracer: OnlineTracer
    fell_back_to_all_threads: bool
    total_instructions: int  # whole original execution

    @property
    def replayed_fraction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.replay.replayed_instructions / self.total_instructions

    @property
    def traced_dependences(self) -> int:
        return self.tracer.dependence_graph().edge_count

    def publish_telemetry(self, registry) -> None:
        """Dump reduction metrics (replay-region length, thread cut,
        dependence counts) into a registry."""
        registry.gauge("reduction.replay.region_instructions").set(
            self.replay.replayed_instructions
        )
        registry.gauge("reduction.replay.total_instructions").set(self.total_instructions)
        registry.gauge("reduction.replay.fraction").set(self.replayed_fraction)
        registry.gauge("reduction.replay.threads_kept").set(len(self.plan.include_tids))
        registry.gauge("reduction.replay.window_segments").set(self.plan.window_segments)
        registry.counter("reduction.replay.fallbacks").inc(
            int(self.fell_back_to_all_threads)
        )
        registry.counter("reduction.traced_dependences").inc(self.traced_dependences)
        self.tracer.publish_telemetry(registry)


class ExecutionReducer:
    def __init__(self, program: Program, log: EventLog):
        if log.failure_seq < 0:
            raise ValueError("the logged run did not fail; nothing to reduce")
        self.program = program
        self.log = log
        self.replayer = Replayer(program, log)

    # -- analysis ----------------------------------------------------------
    def relevant_threads(self, from_seq: int) -> set[int]:
        """Close over logged inter-thread interactions in
        ``[from_seq, failure_seq]`` starting from the failing thread."""
        window = [
            e for e in self.log.syncs if from_seq <= e.seq <= self.log.failure_seq
        ]
        relevant = {self.log.failure_tid, 0}  # thread 0 drives the program
        changed = True
        while changed:
            changed = False
            # shared locks / barriers
            touched: dict[tuple[str, int], set[int]] = {}
            for e in window:
                if e.kind in ("lock", "unlock", "barrier"):
                    touched.setdefault((e.kind if e.kind == "barrier" else "lock", e.obj),
                                       set()).add(e.tid)
            for tids in touched.values():
                if tids & relevant and not tids <= relevant:
                    relevant |= tids
                    changed = True
            # spawn ancestry: a relevant thread's spawner is relevant
            for e in window:
                if e.kind == "spawn" and e.obj in relevant and e.tid not in relevant:
                    relevant.add(e.tid)
                    changed = True
        return relevant

    def plan(self, back_checkpoints: int = 0) -> ReductionPlan:
        """Pick the replay window.

        ``back_checkpoints`` widens the window by that many checkpoint
        intervals — useful when the fault's *origin* (e.g. a memory
        corruption) precedes its *detection* and the slice from the
        minimal window comes back truncated.
        """
        checkpoint = self.log.last_checkpoint_before(self.log.failure_seq)
        assert checkpoint is not None  # checkpoint 0 always exists
        index = max(0, checkpoint.index - back_checkpoints)
        checkpoint = self.log.checkpoints[index]
        include = self.relevant_threads(checkpoint.seq)
        window = len(self.log.schedule) - checkpoint.segment_index
        return ReductionPlan(
            checkpoint_index=checkpoint.index,
            checkpoint_seq=checkpoint.seq,
            include_tids=include,
            window_segments=window,
        )

    # -- execution ------------------------------------------------------------
    def reduce_and_trace(
        self, trace_config: OntracConfig | None = None, back_checkpoints: int = 0
    ) -> ReductionOutcome:
        """Replay the relevant region with ONTRAC attached."""
        plan = self.plan(back_checkpoints=back_checkpoints)
        checkpoint = self.log.checkpoints[plan.checkpoint_index]
        trace_config = trace_config or OntracConfig()

        tracer = OnlineTracer(self.program, trace_config)
        outcome = self.replayer.replay(
            checkpoint=checkpoint,
            include_tids=plan.include_tids,
            hooks=(tracer,),
        )
        fell_back = False
        if not outcome.reproduced_failure:
            # Thread reduction perturbed the execution: replay the whole
            # window (temporal reduction alone is still a large win).
            fell_back = True
            tracer = OnlineTracer(self.program, trace_config)
            outcome = self.replayer.replay(
                checkpoint=checkpoint, include_tids=None, hooks=(tracer,)
            )
        return ReductionOutcome(
            plan=plan,
            replay=outcome,
            tracer=tracer,
            fell_back_to_all_threads=fell_back,
            total_instructions=self.log.final_seq,
        )
