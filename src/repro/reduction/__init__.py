"""Execution reduction for long-running multithreaded programs (§2.2):
checkpointing & logging, deterministic replay, relevance analysis."""

from .analysis import ExecutionReducer, ReductionOutcome, ReductionPlan
from .logging import (
    Checkpoint,
    CheckpointingLogger,
    EventLog,
    InputEvent,
    LoggerCosts,
    SyncEvent,
)
from .replay import Replayer, ReplayOutcome

__all__ = [
    "ExecutionReducer",
    "ReductionOutcome",
    "ReductionPlan",
    "Checkpoint",
    "CheckpointingLogger",
    "EventLog",
    "InputEvent",
    "LoggerCosts",
    "SyncEvent",
    "Replayer",
    "ReplayOutcome",
]
