"""Checkpointing & logging (§2.2, citing [6,8]).

"Under normal circumstances the program is executed with checkpointing
& logging turned on while fine-grained tracing is turned off."  The log
must be just enough to *replay* the execution deterministically:

* the thread schedule (``(tid, instruction count)`` segments — the VM
  is deterministic modulo scheduling),
* input events (channel, value, position),
* synchronization events (lock/unlock/barrier, for the reduction
  analysis's thread-relevance reasoning),
* periodic machine snapshots (checkpoints), taken at quantum
  boundaries every ``checkpoint_interval`` instructions.

The modeled cost is intentionally small — the paper measures logging at
~2x worst case, 1.14x in the MySQL case study: a handful of cycles per
*event* (not per instruction) plus a per-cell charge for snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..vm.events import Hook
from ..vm.machine import Machine
from ..vm.snapshot import Snapshot, take_snapshot


@dataclass(frozen=True)
class InputEvent:
    seq: int
    tid: int
    channel: int
    value: int
    index: int


@dataclass(frozen=True)
class SyncEvent:
    kind: str  # "lock" | "unlock" | "barrier" | "spawn" | "join-exit"
    seq: int
    tid: int
    obj: int  # lock id / barrier id / child tid


@dataclass
class Checkpoint:
    index: int
    seq: int
    segment_index: int  # schedule segments completed before this point
    snapshot: Snapshot


@dataclass
class EventLog:
    """Everything needed to replay (a suffix of) the execution."""

    schedule: list[tuple[int, int]] = field(default_factory=list)
    inputs: list[InputEvent] = field(default_factory=list)
    syncs: list[SyncEvent] = field(default_factory=list)
    checkpoints: list[Checkpoint] = field(default_factory=list)
    final_seq: int = 0
    failure_seq: int = -1
    failure_kind: str = ""
    failure_tid: int = -1

    def last_checkpoint_before(self, seq: int) -> Checkpoint | None:
        best = None
        for cp in self.checkpoints:
            if cp.seq <= seq:
                best = cp
        return best

    @property
    def events_logged(self) -> int:
        return len(self.inputs) + len(self.syncs) + len(self.schedule)


@dataclass
class LoggerCosts:
    """Modeled logging overhead (cheap by design)."""

    per_input_event: int = 40
    per_sync_event: int = 20
    per_schedule_segment: int = 10
    per_snapshot_cell: float = 0.5


class CheckpointingLogger(Hook):
    """Records the event log and takes periodic checkpoints."""

    def __init__(
        self,
        checkpoint_interval: int = 50_000,
        costs: LoggerCosts | None = None,
    ):
        self.checkpoint_interval = checkpoint_interval
        self.costs = costs or LoggerCosts()
        self.log = EventLog()
        self.machine: Machine | None = None
        self._last_checkpoint_seq = 0
        self.overhead_cycles = 0
        self.checkpoint_cells = 0

    def attach(self, machine: Machine) -> "CheckpointingLogger":
        self.machine = machine
        machine.hooks.subscribe(self)
        # Checkpoint 0: the initial state (enables replay from scratch).
        self._take_checkpoint(segment_index=0)
        return self

    # -- hook callbacks (note: NOT on_instruction — logging is cheap) ------
    def on_schedule(self, tid: int, seq: int) -> None:
        machine = self.machine
        assert machine is not None
        # machine.schedule_trace already holds the completed segment.
        self.log.schedule = list(machine.schedule_trace)
        self._charge(self.costs.per_schedule_segment)
        if (
            machine.failure is None
            and machine.seq - self._last_checkpoint_seq >= self.checkpoint_interval
        ):
            self._take_checkpoint(segment_index=len(machine.schedule_trace))

    def on_input(self, tid: int, channel: int, value: int, index: int, seq: int) -> None:
        self.log.inputs.append(InputEvent(seq, tid, channel, value, index))
        self._charge(self.costs.per_input_event)

    def on_lock(self, tid: int, lock_id: int, seq: int) -> None:
        self.log.syncs.append(SyncEvent("lock", seq, tid, lock_id))
        self._charge(self.costs.per_sync_event)

    def on_unlock(self, tid: int, lock_id: int, seq: int) -> None:
        self.log.syncs.append(SyncEvent("unlock", seq, tid, lock_id))
        self._charge(self.costs.per_sync_event)

    def on_barrier(self, tid: int, barrier_id: int, seq: int) -> None:
        self.log.syncs.append(SyncEvent("barrier", seq, tid, barrier_id))
        self._charge(self.costs.per_sync_event)

    def on_thread_start(self, tid: int, fid: int, arg: int, parent: int) -> None:
        assert self.machine is not None
        self.log.syncs.append(SyncEvent("spawn", self.machine.seq, parent, tid))
        self._charge(self.costs.per_sync_event)

    def on_thread_exit(self, tid: int, result: int) -> None:
        assert self.machine is not None
        self.log.syncs.append(SyncEvent("join-exit", self.machine.seq, tid, tid))
        self._charge(self.costs.per_sync_event)

    def on_join(self, tid: int, target: int, seq: int) -> None:
        self.log.syncs.append(SyncEvent("join", seq, tid, target))
        self._charge(self.costs.per_sync_event)

    def on_failure(self, info) -> None:
        self.log.failure_seq = info.seq
        self.log.failure_kind = info.kind
        self.log.failure_tid = info.tid

    # -- internals ---------------------------------------------------------
    def _charge(self, cycles: int) -> None:
        self.overhead_cycles += cycles
        if self.machine is not None:
            self.machine.add_overhead(cycles)

    def _take_checkpoint(self, segment_index: int) -> None:
        machine = self.machine
        assert machine is not None
        snapshot = take_snapshot(machine)
        self.log.checkpoints.append(
            Checkpoint(
                index=len(self.log.checkpoints),
                seq=machine.seq,
                segment_index=segment_index,
                snapshot=snapshot,
            )
        )
        self._last_checkpoint_seq = machine.seq
        self.checkpoint_cells += snapshot.size_cells
        self._charge(int(snapshot.size_cells * self.costs.per_snapshot_cell))

    def finalize(self) -> EventLog:
        """Call after the run: completes the schedule and counters."""
        machine = self.machine
        assert machine is not None
        self.log.schedule = list(machine.schedule_trace)
        self.log.final_seq = machine.seq
        return self.log

    def publish_telemetry(self, registry) -> None:
        """Dump checkpoint/log metrics into a registry; call after the run.

        ``checkpoint_bytes`` models one guest word (4 bytes) per
        snapshotted cell, matching the cycle model's per-cell charge.
        """
        log = self.log
        registry.counter("reduction.log.input_events").inc(len(log.inputs))
        registry.counter("reduction.log.sync_events").inc(len(log.syncs))
        registry.counter("reduction.log.schedule_segments").inc(len(log.schedule))
        registry.counter("reduction.checkpoints").inc(len(log.checkpoints))
        registry.counter("reduction.checkpoint_cells").inc(self.checkpoint_cells)
        registry.counter("reduction.checkpoint_bytes").inc(self.checkpoint_cells * 4)
        registry.gauge("reduction.log.overhead_cycles").set(self.overhead_cycles)
